//! Small configured topologies used by the paper's experiments:
//! the Fig. 1 deadlock ring and the §7 dumbbell/incast.

use crate::graph::{LinkId, NodeId, Topology};
use std::collections::HashMap;

/// The Fig. 1 scenario: `n` switches in a cycle, one host per switch, and
/// one flow per host routed *clockwise across two inter-switch links*
/// (`H_i → H_{i+2 mod n}` via `S_i, S_{i+1}, S_{i+2}`). Those routes form
/// the canonical CBD; the paper's testbed and §6.1 experiments use `n = 3`.
#[derive(Debug, Clone)]
pub struct Ring {
    /// The graph.
    pub topo: Topology,
    /// Host ids, index i ↔ "H{i+1}" attached to switch i.
    pub hosts: Vec<NodeId>,
    /// Switch ids around the cycle.
    pub switches: Vec<NodeId>,
    /// Host access links, host order.
    pub host_links: Vec<LinkId>,
    /// Inter-switch links, `ring_links[i]` connecting `S_i → S_{i+1}`.
    pub ring_links: Vec<LinkId>,
}

impl Ring {
    /// Build an `n`-switch ring (n ≥ 3).
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "a deadlock ring needs at least 3 switches");
        let mut topo = Topology::new();
        let hosts: Vec<NodeId> = (0..n).map(|i| topo.add_host(format!("H{}", i + 1))).collect();
        let switches: Vec<NodeId> =
            (0..n).map(|i| topo.add_switch(format!("S{}", i + 1))).collect();
        let host_links: Vec<LinkId> =
            (0..n).map(|i| topo.add_link(hosts[i], switches[i])).collect();
        let ring_links: Vec<LinkId> =
            (0..n).map(|i| topo.add_link(switches[i], switches[(i + 1) % n])).collect();
        Ring { topo, hosts, switches, host_links, ring_links }
    }

    /// The number of switches.
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// Whether the ring is empty (never true; satisfies the `len` idiom).
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }

    /// The clockwise two-switch-link route `H_i → H_{i+2}`.
    pub fn clockwise_path(&self, i: usize) -> (NodeId, NodeId, Vec<LinkId>) {
        let n = self.len();
        let src = self.hosts[i];
        let dst = self.hosts[(i + 2) % n];
        let path = vec![
            self.host_links[i],
            self.ring_links[i],
            self.ring_links[(i + 1) % n],
            self.host_links[(i + 2) % n],
        ];
        (src, dst, path)
    }

    /// The full clockwise flow set (one per host) as a static routing map —
    /// the configuration whose buffer dependencies form the Fig. 1 CBD.
    pub fn clockwise_routes(&self) -> HashMap<(NodeId, NodeId), Vec<LinkId>> {
        (0..self.len())
            .map(|i| {
                let (s, d, p) = self.clockwise_path(i);
                ((s, d), p)
            })
            .collect()
    }

    /// Source/destination pairs of the clockwise flow set.
    pub fn clockwise_flows(&self) -> Vec<(NodeId, NodeId)> {
        (0..self.len())
            .map(|i| {
                let (s, d, _) = self.clockwise_path(i);
                (s, d)
            })
            .collect()
    }
}

/// A switch ring with hosts only on every `stride`-th switch — the
/// showcase for the gap between the Table 1 all-pairs prefilter and the
/// exact deadlock-freedom analysis.
///
/// With hosts on alternating switches (`stride = 2`), the all-pairs union
/// dependency graph still contains the full clockwise (and counter-
/// clockwise) ring cycle: every segment `(S_i→S_{i+1}, S_{i+1}→S_{i+2})`
/// lies on *some* destination's equal-cost DAG. But the segments that
/// pass *through* a host switch without delivering are phantom — no
/// host-originated flow toward that destination ever arrives over their
/// upstream link — so the host-realizable graph breaks the cycle at every
/// host switch and the fabric is deadlock-free under any scheme.
#[derive(Debug, Clone)]
pub struct SparseRing {
    /// The graph.
    pub topo: Topology,
    /// Host ids, in ring order of their switches.
    pub hosts: Vec<NodeId>,
    /// Switch ids around the cycle.
    pub switches: Vec<NodeId>,
    /// Inter-switch links, `ring_links[i]` connecting `S_i → S_{i+1}`.
    pub ring_links: Vec<LinkId>,
}

impl SparseRing {
    /// Build an `n`-switch ring with a host on every `stride`-th switch
    /// (`stride ≥ 2` divides `n`; `stride = 1` is [`Ring`]).
    pub fn new(n: usize, stride: usize) -> Self {
        assert!(n >= 4, "a sparse ring needs at least 4 switches");
        assert!(stride >= 2 && n.is_multiple_of(stride), "stride must be ≥ 2 and divide n");
        let mut topo = Topology::new();
        let switches: Vec<NodeId> =
            (0..n).map(|i| topo.add_switch(format!("S{}", i + 1))).collect();
        let hosts: Vec<NodeId> = (0..n)
            .step_by(stride)
            .map(|i| {
                let h = topo.add_host(format!("H{}", i + 1));
                topo.add_link(h, switches[i]);
                h
            })
            .collect();
        let ring_links: Vec<LinkId> =
            (0..n).map(|i| topo.add_link(switches[i], switches[(i + 1) % n])).collect();
        SparseRing { topo, hosts, switches, ring_links }
    }
}

/// The §7 incast scenario: `n` sender hosts and one receiver on a single
/// switch (Fig. 20 uses 8 senders). Every sender's traffic converges on
/// the receiver's access link.
#[derive(Debug, Clone)]
pub struct Incast {
    /// The graph.
    pub topo: Topology,
    /// Sender hosts `H1…Hn`.
    pub senders: Vec<NodeId>,
    /// The receiver host (`H{n+1}`).
    pub receiver: NodeId,
    /// The switch.
    pub switch: NodeId,
    /// Sender access links, sender order.
    pub sender_links: Vec<LinkId>,
    /// The receiver's access link (the bottleneck).
    pub receiver_link: LinkId,
}

impl Incast {
    /// Build an `n`-to-1 incast (n ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let mut topo = Topology::new();
        let senders: Vec<NodeId> = (0..n).map(|i| topo.add_host(format!("H{}", i + 1))).collect();
        let receiver = topo.add_host(format!("H{}", n + 1));
        let switch = topo.add_switch("S1");
        let sender_links: Vec<LinkId> = (0..n).map(|i| topo.add_link(senders[i], switch)).collect();
        let receiver_link = topo.add_link(receiver, switch);
        Incast { topo, senders, receiver, switch, sender_links, receiver_link }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbd::depgraph_for_flows;
    use crate::routing::{walk_nodes, Routing};

    #[test]
    fn ring3_clockwise_is_a_cbd() {
        let ring = Ring::new(3);
        let flows: Vec<_> = (0..3)
            .map(|i| {
                let (s, _, p) = ring.clockwise_path(i);
                (s, p)
            })
            .collect();
        assert!(depgraph_for_flows(&ring.topo, &flows).has_cycle());
    }

    #[test]
    fn ring5_clockwise_is_a_cbd() {
        let ring = Ring::new(5);
        let flows: Vec<_> = (0..5)
            .map(|i| {
                let (s, _, p) = ring.clockwise_path(i);
                (s, p)
            })
            .collect();
        assert!(depgraph_for_flows(&ring.topo, &flows).has_cycle());
    }

    #[test]
    fn clockwise_paths_are_valid_walks() {
        let ring = Ring::new(3);
        for i in 0..3 {
            let (s, d, p) = ring.clockwise_path(i);
            let nodes = walk_nodes(&ring.topo, s, &p).unwrap();
            assert_eq!(*nodes.last().unwrap(), d);
            assert_eq!(nodes.len(), 5, "host, 3 switches, host");
        }
    }

    #[test]
    fn static_routing_serves_clockwise() {
        let ring = Ring::new(3);
        let mut routing = Routing::fixed(ring.clockwise_routes());
        let (s, d, p) = ring.clockwise_path(0);
        assert_eq!(routing.path(&ring.topo, s, d, 99).unwrap(), p);
    }

    #[test]
    fn sparse_ring_shape() {
        let ring = SparseRing::new(6, 2);
        assert_eq!(ring.switches.len(), 6);
        assert_eq!(ring.hosts.len(), 3);
        assert_eq!(ring.ring_links.len(), 6);
        assert!(ring.topo.hosts_connected());
        // Hosts sit on S1, S3, S5 (alternating).
        for (k, &h) in ring.hosts.iter().enumerate() {
            let (sw, _) = ring.topo.ports(h)[0];
            assert_eq!(sw, ring.switches[2 * k]);
        }
    }

    #[test]
    fn incast_shape() {
        let inc = Incast::new(8);
        assert_eq!(inc.senders.len(), 8);
        assert_eq!(inc.topo.hosts().len(), 9);
        assert_eq!(inc.topo.switches().len(), 1);
        assert_eq!(inc.topo.ports(inc.switch).len(), 9);
        assert!(inc.topo.hosts_connected());
    }
}
