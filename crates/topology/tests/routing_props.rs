//! Property-based tests of routing and CBD analysis on randomly failed
//! fat-trees.

use gfc_topology::cbd::{all_pairs_depgraph, depgraph_for_flows, realize_cycle};
use gfc_topology::fattree::FatTree;
use gfc_topology::routing::{walk_nodes, SpfRouting};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn failed_fat_tree(k: usize, seed: u64, prob: f64) -> FatTree {
    let mut ft = FatTree::new(k);
    let mut rng = StdRng::seed_from_u64(seed);
    ft.inject_failures(&mut rng, prob);
    ft
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every SPF path between reachable hosts is a valid walk over alive
    /// links, ends at the destination, and is no longer than a loose
    /// diameter bound.
    #[test]
    fn spf_paths_are_valid_walks(seed in 0u64..500, s in 0usize..16, d in 0usize..16, hash: u64) {
        prop_assume!(s != d);
        let ft = failed_fat_tree(4, seed, 0.08);
        let mut r = SpfRouting::new();
        if let Some(p) = r.path(&ft.topo, ft.hosts[s], ft.hosts[d], hash) {
            let nodes = walk_nodes(&ft.topo, ft.hosts[s], &p).expect("valid walk");
            prop_assert_eq!(*nodes.last().unwrap(), ft.hosts[d]);
            prop_assert!(p.len() <= 12, "path suspiciously long: {} links", p.len());
            // Shortest: every ECMP variant has the same length.
            let q = r.path(&ft.topo, ft.hosts[s], ft.hosts[d], hash.wrapping_add(1)).unwrap();
            prop_assert_eq!(p.len(), q.len());
        }
    }

    /// The hop distance is symmetric on an undirected graph.
    #[test]
    fn distance_is_symmetric(seed in 0u64..500, s in 0usize..16, d in 0usize..16) {
        prop_assume!(s != d);
        let ft = failed_fat_tree(4, seed, 0.08);
        let mut r = SpfRouting::new();
        let ab = r.distance(&ft.topo, ft.hosts[s], ft.hosts[d]);
        let ba = r.distance(&ft.topo, ft.hosts[d], ft.hosts[s]);
        prop_assert_eq!(ab, ba);
    }

    /// A realized cycle's flows always reproduce a CBD in the flow-level
    /// dependency graph, and every realized path is valid.
    #[test]
    fn realized_cycles_are_sound(seed in 0u64..300) {
        let ft = failed_fat_tree(4, seed, 0.08);
        let g = all_pairs_depgraph(&ft.topo);
        let Some(cycle) = g.find_cycle() else { return Ok(()) };
        let Some(flows) = realize_cycle(&ft.topo, &cycle) else { return Ok(()) };
        for (s, d, p) in &flows {
            let nodes = walk_nodes(&ft.topo, *s, p).expect("valid walk");
            prop_assert_eq!(nodes.last(), Some(d));
        }
        let fg = depgraph_for_flows(
            &ft.topo,
            &flows.iter().map(|(s, _, p)| (*s, p.clone())).collect::<Vec<_>>(),
        );
        prop_assert!(fg.has_cycle(), "realized flows lost the CBD");
    }

    /// The all-pairs CBD predicate is sound: if any concrete SPF flow set
    /// has a cycle, the all-pairs graph must have one too.
    #[test]
    fn all_pairs_graph_is_a_superset(
        seed in 0u64..300,
        pairs in proptest::collection::vec((0usize..16, 0usize..16, any::<u64>()), 1..12),
    ) {
        let ft = failed_fat_tree(4, seed, 0.08);
        let mut r = SpfRouting::new();
        let mut flows = Vec::new();
        for (s, d, h) in pairs {
            if s == d {
                continue;
            }
            if let Some(p) = r.path(&ft.topo, ft.hosts[s], ft.hosts[d], h) {
                flows.push((ft.hosts[s], p));
            }
        }
        let concrete = depgraph_for_flows(&ft.topo, &flows);
        if concrete.has_cycle() {
            prop_assert!(
                all_pairs_depgraph(&ft.topo).has_cycle(),
                "concrete CBD missed by the all-pairs prefilter"
            );
        }
    }
}
