//! The individual preflight checks (GFC001–GFC011).
//!
//! Every check is total: it never panics on malformed input, it reports.
//! Checks run before the simulator's own `validate()` asserts, so the
//! degenerate cases those asserts would kill (e.g. `B1 ≥ Bm`) must come
//! out of here as Error diagnostics with usable hints instead.

use crate::diag::{Code, Diagnostic, Report, Severity};
use crate::spec::FabricSpec;
use gfc_core::bfc::BfcConfig;
use gfc_core::fc_config::{
    CbfcParams, ConceptualParams, DcfitParams, FcConfig, GfcBufferParams, GfcTimeParams, PfcParams,
};
use gfc_core::mapping::StageTable;
use gfc_core::theorems;
use gfc_core::units::{Dur, Rate};
use gfc_topology::cbd::{
    all_pairs_depgraph, depgraph_for_flows, realizable_all_pairs_depgraph, spf_depgraph_for_pairs,
};
use gfc_topology::render::{self, render_dirlink_cycle};
use gfc_topology::{DepGraph, DirLink, NodeId, Routing, Scc, Topology};

fn push(
    report: &mut Report,
    code: Code,
    severity: Severity,
    subject: String,
    message: String,
    hint: String,
) {
    report.push(Diagnostic { code, severity, subject, message, hint });
}

/// Dispatch the per-scheme threshold checks (GFC001–GFC006, GFC009,
/// GFC010) plus the scheme-independent register check (GFC008).
pub(crate) fn check_parameters(spec: &FabricSpec, report: &mut Report) {
    match spec.fc {
        FcConfig::None => {}
        FcConfig::Pfc(PfcParams { xoff, xon }) => check_pfc(spec, xoff, xon, report),
        // DCFIT is PFC with detection tags riding on the frames: its
        // threshold soundness conditions are PFC's verbatim.
        FcConfig::Dcfit(DcfitParams { xoff, xon }) => check_pfc(spec, xoff, xon, report),
        FcConfig::Cbfc(CbfcParams { period }) => check_cbfc(spec, period, report),
        FcConfig::GfcBuffer(GfcBufferParams { bm, b1, stage_ratio }) => {
            check_bm(spec, bm, report);
            check_buffer_gfc(spec, bm, b1, stage_ratio, report);
        }
        FcConfig::GfcTime(GfcTimeParams { b0, bm, period }) => {
            check_bm(spec, bm, report);
            check_time_gfc(spec, b0, bm, period, report);
        }
        FcConfig::Conceptual(ConceptualParams { b0, bm, tau }) => {
            check_bm(spec, bm, report);
            check_conceptual(spec, b0, bm, tau, report);
        }
        FcConfig::Bfc(cfg) => check_bfc(spec, &cfg, report),
    }
    check_rate_limiter(spec, report);
}

/// GFC001 — Theorem 4.1: conceptual GFC needs `B0 ≤ Bm − 4·C·τ`.
fn check_conceptual(spec: &FabricSpec, b0: u64, bm: u64, tau: Dur, report: &mut Report) {
    if b0 >= bm {
        push(
            report,
            Code::Gfc001,
            Severity::Error,
            format!("fc.b0 = {b0} B, fc.bm = {bm} B"),
            "conceptual GFC needs B0 < Bm: the linear descent of Fig. 4(b) is empty".into(),
            "choose B0 below Bm (Theorem 4.1 admits up to Bm − 4·C·τ)".into(),
        );
        return;
    }
    match theorems::conceptual_b0_bound(bm, spec.capacity, tau) {
        None => push(
            report,
            Code::Gfc001,
            Severity::Error,
            format!("fc.bm = {bm} B, 4·C·τ = {} B", spec.capacity.bytes_in(tau) * 4),
            "Theorem 4.1 is unsatisfiable: Bm is smaller than 4·C·τ, so no B0 avoids hold-and-wait".into(),
            "enlarge the buffer beyond 4·C·τ or shorten the feedback latency τ".into(),
        ),
        Some(bound) if b0 > bound => push(
            report,
            Code::Gfc001,
            Severity::Error,
            format!("fc.b0 = {b0} B"),
            format!(
                "Theorem 4.1 violated: B0 = {b0} B exceeds Bm − 4·C·τ = {bound} B, so a full-rate burst can exhaust the buffer and hold-and-wait"
            ),
            format!("set B0 ≤ {bound} B"),
        ),
        Some(_) => {}
    }
}

/// GFC002 — §4.2: buffer-based GFC needs `B1 ≤ Bm − 2·C·τ`. Returns
/// whether `(bm, b1)` are ordered sanely (gates the stage-table check).
fn check_buffer_gfc(
    spec: &FabricSpec,
    bm: u64,
    b1: u64,
    stage_ratio: (u64, u64),
    report: &mut Report,
) {
    if b1 >= bm {
        push(
            report,
            Code::Gfc002,
            Severity::Error,
            format!("fc.b1 = {b1} B, fc.bm = {bm} B"),
            "buffer-based GFC needs B1 < Bm: there is no room for any rate-reducing stage".into(),
            "choose B1 below Bm (§4.2 admits up to Bm − 2·C·τ)".into(),
        );
        return;
    }
    let tau = spec.tau();
    match theorems::buffer_based_b1_bound(bm, spec.capacity, tau) {
        None => push(
            report,
            Code::Gfc002,
            Severity::Error,
            format!("fc.bm = {bm} B, 2·C·τ = {} B", spec.capacity.bytes_in(tau) * 2),
            "the §4.2 bound is unsatisfiable: Bm is smaller than 2·C·τ".into(),
            "enlarge the buffer beyond 2·C·τ or shorten τ (Eq. 6)".into(),
        ),
        Some(bound) if b1 > bound => push(
            report,
            Code::Gfc002,
            Severity::Error,
            format!("fc.b1 = {b1} B"),
            format!(
                "§4.2 bound violated: B1 = {b1} B exceeds Bm − 2·C·τ = {bound} B, so stage-1 feedback can arrive after the buffer is exhausted"
            ),
            format!("set B1 ≤ {bound} B"),
        ),
        Some(_) => {}
    }
    check_stage_table(spec, bm, b1, stage_ratio, report);
}

/// GFC003 — Theorem 5.1: time-based GFC needs
/// `B0 ≤ Bm − (√(τ/T)+1)²·C·T`.
fn check_time_gfc(spec: &FabricSpec, b0: u64, bm: u64, period: Dur, report: &mut Report) {
    if !check_period(spec, period, report) {
        return;
    }
    if b0 >= bm {
        push(
            report,
            Code::Gfc003,
            Severity::Error,
            format!("fc.b0 = {b0} B, fc.bm = {bm} B"),
            "time-based GFC needs B0 < Bm: the linear descent is empty".into(),
            "choose B0 below Bm (Theorem 5.1 bounds the admissible maximum)".into(),
        );
        return;
    }
    match theorems::time_based_b0_bound(bm, spec.capacity, spec.tau(), period) {
        None => push(
            report,
            Code::Gfc003,
            Severity::Error,
            format!(
                "fc.bm = {bm} B, (√(τ/T)+1)²·C·T = {} B",
                theorems::time_based_margin(spec.capacity, spec.tau(), period)
            ),
            "Theorem 5.1 is unsatisfiable: Bm is smaller than the (√(τ/T)+1)²·C·T reserve".into(),
            "enlarge the buffer, shorten the feedback period T, or shorten τ".into(),
        ),
        Some(bound) if b0 > bound => push(
            report,
            Code::Gfc003,
            Severity::Error,
            format!("fc.b0 = {b0} B"),
            format!("Theorem 5.1 violated: B0 = {b0} B exceeds Bm − (√(τ/T)+1)²·C·T = {bound} B"),
            format!("set B0 ≤ {bound} B"),
        ),
        Some(_) => {}
    }
}

/// GFC004/GFC005 — PFC threshold soundness and hysteresis.
fn check_pfc(spec: &FabricSpec, xoff: u64, xon: u64, report: &mut Report) {
    let ctau = spec.ctau_bytes();
    if xoff > spec.buffer_bytes {
        push(
            report,
            Code::Gfc004,
            Severity::Error,
            format!("fc.xoff = {xoff} B, buffer = {} B", spec.buffer_bytes),
            "XOFF lies beyond the physical buffer: PAUSE can never fire before overflow".into(),
            format!("set XOFF ≤ buffer − C·τ = {} B", spec.buffer_bytes.saturating_sub(ctau)),
        );
    } else {
        let headroom = spec.buffer_bytes - xoff;
        let conservative = 2 * ctau + spec.mtu;
        if headroom < ctau {
            push(
                report,
                Code::Gfc004,
                Severity::Error,
                format!("fc.xoff = {xoff} B (headroom {headroom} B)"),
                format!(
                    "XOFF headroom {headroom} B is below C·τ = {ctau} B: in-flight data arriving after PAUSE overflows the buffer — drops in a lossless fabric"
                ),
                format!("set XOFF ≤ {} B", spec.buffer_bytes - ctau),
            );
        } else if headroom < conservative {
            push(
                report,
                Code::Gfc004,
                Severity::Warning,
                format!("fc.xoff = {xoff} B (headroom {headroom} B)"),
                format!(
                    "XOFF headroom {headroom} B is below the conservative 2·C·τ + MTU = {conservative} B provisioning (§2): no margin if the PAUSE round trip degrades"
                ),
                format!("for worst-case provisioning set XOFF ≤ {} B", spec.buffer_bytes - conservative),
            );
        }
    }
    if xon >= xoff {
        push(
            report,
            Code::Gfc005,
            Severity::Error,
            format!("fc.xon = {xon} B, fc.xoff = {xoff} B"),
            "XON is not below XOFF: the pause gate has no hysteresis and can never resume cleanly"
                .into(),
            "set XON at least one MTU below XOFF (the paper uses a 2·MTU gap)".into(),
        );
    } else if xoff - xon < spec.mtu {
        push(
            report,
            Code::Gfc005,
            Severity::Warning,
            format!("fc.xoff − fc.xon = {} B", xoff - xon),
            format!(
                "XON/XOFF gap is narrower than one MTU ({} B): a single arriving frame re-crosses XOFF and every packet costs a PAUSE/RESUME pair",
                spec.mtu
            ),
            "widen the gap to at least 2·MTU".into(),
        );
    }
}

/// GFC004/GFC005 for BFC: the aggregate XOFF plays PFC XOFF's role (last
/// line of defense against overflow of the shared ingress buffer), so it
/// needs the same `C·τ` headroom; the per-flow and aggregate threshold
/// pairs each need hysteresis to resume cleanly.
fn check_bfc(spec: &FabricSpec, cfg: &BfcConfig, report: &mut Report) {
    let ctau = spec.ctau_bytes();
    if cfg.agg_xoff > spec.buffer_bytes {
        push(
            report,
            Code::Gfc004,
            Severity::Error,
            format!("fc.agg_xoff = {} B, buffer = {} B", cfg.agg_xoff, spec.buffer_bytes),
            "the aggregate XOFF lies beyond the physical buffer: the backstop pause can never fire before overflow".into(),
            format!(
                "set agg_xoff ≤ buffer − C·τ = {} B",
                spec.buffer_bytes.saturating_sub(ctau)
            ),
        );
    } else {
        let headroom = spec.buffer_bytes - cfg.agg_xoff;
        if headroom < ctau {
            push(
                report,
                Code::Gfc004,
                Severity::Error,
                format!("fc.agg_xoff = {} B (headroom {headroom} B)", cfg.agg_xoff),
                format!(
                    "aggregate XOFF headroom {headroom} B is below C·τ = {ctau} B: in-flight data arriving after the backstop pause overflows the buffer"
                ),
                format!("set agg_xoff ≤ {} B", spec.buffer_bytes - ctau),
            );
        }
    }
    for (name, xoff, xon) in
        [("flow", cfg.flow_xoff, cfg.flow_xon), ("agg", cfg.agg_xoff, cfg.agg_xon)]
    {
        if xon >= xoff {
            push(
                report,
                Code::Gfc005,
                Severity::Error,
                format!("fc.{name}_xon = {xon} B, fc.{name}_xoff = {xoff} B"),
                format!(
                    "the {name} pause thresholds have no hysteresis: a paused flow can never resume cleanly"
                ),
                format!("set {name}_xon at least one MTU below {name}_xoff"),
            );
        } else if xoff - xon < spec.mtu {
            push(
                report,
                Code::Gfc005,
                Severity::Warning,
                format!("fc.{name}_xoff − fc.{name}_xon = {} B", xoff - xon),
                format!(
                    "the {name} XON/XOFF gap is narrower than one MTU ({} B): a single arriving frame re-crosses XOFF and every packet costs a pause/resume pair",
                    spec.mtu
                ),
                "widen the gap to at least 2·MTU".into(),
            );
        }
    }
}

/// GFC006 — CBFC credit sizing: the advertised buffer is the credit pool;
/// if it cannot cover the bandwidth–delay product of the feedback loop the
/// link idles waiting for FCPs (throughput loss, not a safety issue).
fn check_cbfc(spec: &FabricSpec, period: Dur, report: &mut Report) {
    if !check_period(spec, period, report) {
        return;
    }
    let rtt = spec.t_wire.mul_u64(2) + spec.t_proc + period;
    let bdp = spec.capacity.bytes_in(rtt) + spec.mtu;
    if spec.buffer_bytes < bdp {
        push(
            report,
            Code::Gfc006,
            Severity::Warning,
            format!("buffer = {} B, C·(2·t_w + t_r + T) + MTU = {bdp} B", spec.buffer_bytes),
            "credits cannot cover one feedback round trip: the sender exhausts the pool and idles until the next FCP — the link cannot sustain line rate".into(),
            format!("provision at least {bdp} B of buffer, or shorten the feedback period"),
        );
    }
    let recommended = theorems::cbfc_recommended_period(spec.capacity);
    if period.0 > recommended.0.saturating_mul(4) {
        push(
            report,
            Code::Gfc006,
            Severity::Info,
            format!("fc.period = {:.1} µs", period.as_micros_f64()),
            format!(
                "feedback period is more than 4× the 65535-byte guidance ({:.1} µs): credit state goes stale between updates",
                recommended.as_micros_f64()
            ),
            "consider the InfiniBand-recommended period (time to send 65535 B)".into(),
        );
    }
}

/// GFC010 — feedback-period sanity, shared by the periodic schemes.
/// Returns false when the period is unusable (dependent checks skip).
fn check_period(spec: &FabricSpec, period: Dur, report: &mut Report) -> bool {
    if period.0 == 0 {
        push(
            report,
            Code::Gfc010,
            Severity::Error,
            "fc.period = 0".into(),
            "a zero feedback period is degenerate: the feedback clock never advances".into(),
            "use a positive period (e.g. the time to send 65535 B)".into(),
        );
        return false;
    }
    let mtu_ser = Dur::for_bytes(spec.mtu, spec.capacity);
    if period < mtu_ser {
        push(
            report,
            Code::Gfc010,
            Severity::Warning,
            format!("fc.period = {:.2} µs", period.as_micros_f64()),
            format!(
                "feedback period is shorter than one MTU serialization ({:.2} µs): control messages outnumber data frames (the Fig. 19 control-bandwidth flood)",
                mtu_ser.as_micros_f64()
            ),
            "lengthen the period to at least a few MTU times".into(),
        );
    }
    true
}

/// GFC009 — `Bm` vs. the physical buffer.
fn check_bm(spec: &FabricSpec, bm: u64, report: &mut Report) {
    if bm > spec.buffer_bytes {
        push(
            report,
            Code::Gfc009,
            Severity::Error,
            format!("fc.bm = {bm} B, buffer = {} B", spec.buffer_bytes),
            "Bm lies beyond the physical buffer: the mapping's zero-rate point is unreachable and overflow precedes it".into(),
            format!("set Bm ≤ {} B (§5.4 sets Bm to the full buffer)", spec.buffer_bytes),
        );
    } else if bm < spec.buffer_bytes {
        push(
            report,
            Code::Gfc009,
            Severity::Info,
            format!("fc.bm = {bm} B, buffer = {} B", spec.buffer_bytes),
            format!(
                "{} B of buffer above Bm are never used by the mapping (headroom for feedback-latency creep)",
                spec.buffer_bytes - bm
            ),
            "intentional headroom is fine; otherwise set Bm to the full buffer (§5.4)".into(),
        );
    }
}

/// GFC007 — stage-table geometry: thresholds strictly increase, rates
/// follow `R_k = C·(num/den)^k` exactly, the deepest stage still trickles,
/// and the ratio respects Eq. (3)'s 3/4 admissibility limit.
fn check_stage_table(
    spec: &FabricSpec,
    bm: u64,
    b1: u64,
    stage_ratio: (u64, u64),
    report: &mut Report,
) {
    let (num, den) = stage_ratio;
    if num == 0 || num >= den {
        push(
            report,
            Code::Gfc007,
            Severity::Error,
            format!("fc.stage_ratio = {num}/{den}"),
            "the stage ratio must lie strictly inside (0, 1)".into(),
            "the paper uses 1/2 (Eq. 4); Eq. (3) admits anything ≤ 3/4".into(),
        );
        return;
    }
    if 4 * num > 3 * den {
        push(
            report,
            Code::Gfc007,
            Severity::Error,
            format!("fc.stage_ratio = {num}/{den}"),
            "stage ratio exceeds 3/4: Eq. (3) no longer holds, so a stage's worst-case inflow outruns the next stage's drain and hold-and-wait returns".into(),
            "use a ratio ≤ 3/4 (the paper selects 1/2)".into(),
        );
    }
    if b1 >= bm {
        return; // already an Error from GFC002; the table cannot be built
    }
    let table = StageTable::with_ratio(bm, b1, spec.capacity, num, den);
    let mut prev: Option<(u64, Rate)> = None;
    for (k, stage) in table.iter() {
        if let Some((pstart, prate)) = prev {
            if stage.start <= pstart {
                push(
                    report,
                    Code::Gfc007,
                    Severity::Error,
                    format!("stage {k} start = {} B", stage.start),
                    format!(
                        "stage thresholds must strictly increase (stage {} starts at {pstart} B)",
                        k - 1
                    ),
                    "this indicates a malformed table; rebuild it from (Bm, B1, C)".into(),
                );
            }
            let expected = Rate((prate.0 as u128 * num as u128 / den as u128) as u64);
            if stage.rate != expected {
                push(
                    report,
                    Code::Gfc007,
                    Severity::Error,
                    format!("stage {k} rate = {} b/s", stage.rate.0),
                    format!(
                        "stage rates must follow R_k = C·({num}/{den})^k (expected {} b/s from stage {})",
                        expected.0,
                        k - 1
                    ),
                    "this indicates a malformed table; rebuild it from (Bm, B1, C)".into(),
                );
            }
        } else if stage.rate != spec.capacity {
            push(
                report,
                Code::Gfc007,
                Severity::Error,
                format!("stage 0 rate = {} b/s", stage.rate.0),
                "stage 0 must map to full line rate C".into(),
                "this indicates a malformed table; rebuild it from (Bm, B1, C)".into(),
            );
        }
        prev = Some((stage.start, stage.rate));
    }
    let deepest = table.rate_for_stage(table.num_stages());
    if deepest == Rate::ZERO {
        push(
            report,
            Code::Gfc007,
            Severity::Error,
            format!("stage {} rate = 0", table.num_stages()),
            "the deepest stage maps to zero: GFC degenerates into a hard gate and the no-hold-and-wait guarantee is void".into(),
            "widen Bm − B1 or use a coarser ratio so the deepest stage stays positive".into(),
        );
    } else if deepest < spec.min_rate_unit {
        push(
            report,
            Code::Gfc008,
            Severity::Info,
            format!(
                "stage {} rate = {} b/s, min_rate_unit = {} b/s",
                table.num_stages(),
                deepest.0,
                spec.min_rate_unit.0
            ),
            "the deepest stages fall below the rate-limiter's minimum unit and clamp to it (§7): the effective table is shallower than N".into(),
            "harmless; raise B1 (fewer stages) or lower min_rate_unit to use the full depth".into(),
        );
    }
}

/// GFC008 — rate-limiter register sanity (§5.3 three-register design,
/// §7 commodity minimum unit).
fn check_rate_limiter(spec: &FabricSpec, report: &mut Report) {
    if spec.min_rate_unit > spec.capacity {
        push(
            report,
            Code::Gfc008,
            Severity::Error,
            format!("min_rate_unit = {} b/s, C = {} b/s", spec.min_rate_unit.0, spec.capacity.0),
            "the pacing floor exceeds line rate: every assignment clamps to C and the limiter can never throttle".into(),
            "set min_rate_unit well below C (commodity gear uses 8 Kb/s, §7)".into(),
        );
    } else if spec.min_rate_unit == Rate::ZERO && spec.fc.is_gfc() {
        push(
            report,
            Code::Gfc008,
            Severity::Warning,
            "min_rate_unit = 0".into(),
            "no pacing floor: the countdown R_c = R_l·(C − R_r)/R_r grows without bound as R_r → 0, beyond any hardware register range".into(),
            "use the §7 commodity floor (8 Kb/s) unless modeling ideal hardware".into(),
        );
    }
}

/// GFC011/GFC012/GFC013 — the CBD pipeline.
///
/// 1. Condense the *conservative* dependency graph (the Table 1 prefilter
///    basis) into strongly connected components and report each cyclic
///    SCC under GFC011, with a representative cycle and a break-set hint.
/// 2. Peel the *witnessed* (host-realizable) graph: deadlock is reachable
///    iff some vertex survives every peeling round. That exact verdict is
///    GFC012, and it can downgrade a cyclic-but-safe GFC011 finding from
///    Error to Info.
/// 3. When the fabric is genuinely susceptible (residual + hard gate),
///    GFC013 ranks break-set advisories per residual component.
pub(crate) fn check_cbd(
    topo: &Topology,
    routing: &Routing,
    spec: &FabricSpec,
    report: &mut Report,
) {
    let conservative = conservative_depgraph(topo, routing);
    let witnessed = witnessed_depgraph(topo, routing, &conservative);
    let condensation = conservative.condensation();
    let cyclic: Vec<&Scc> = condensation.cyclic_by_size();
    let peel = witnessed.peel();
    let exact_free = peel.deadlock_free();
    report.cbd_prone = !cyclic.is_empty();
    report.exact_deadlock_free = exact_free;
    report.deadlock_susceptible = !exact_free && spec.fc.has_hard_gate();

    // GFC011 — one finding per cyclic SCC of the conservative graph.
    if cyclic.is_empty() {
        push(
            report,
            Code::Gfc011,
            Severity::Info,
            format!("topology: {} nodes, {} links", topo.num_nodes(), topo.link_ids().count()),
            "no cyclic buffer dependency under this routing: circular wait is impossible for any flow-control scheme".into(),
            "no action needed".into(),
        );
    }
    for scc in &cyclic {
        let cycle = conservative.cycle_in_scc(scc);
        let subject =
            format!("routing: {}", render_dirlink_cycle(topo, &cycle, render::CHAIN_MAX_HOPS));
        let break_hint = break_set_hint(topo, &conservative, scc);
        if spec.fc.has_hard_gate() {
            if exact_free {
                push(
                    report,
                    Code::Gfc011,
                    Severity::Info,
                    subject,
                    format!(
                        "SCC of {} directed links is cyclic in the all-pairs union, but every dependency a host flow can realize drains (GFC012): the cycle is a phantom of the conservative prefilter",
                        scc.len()
                    ),
                    "no action needed — see the GFC012 peeling certificate".into(),
                );
            } else {
                push(
                    report,
                    Code::Gfc011,
                    Severity::Error,
                    subject,
                    format!(
                        "cyclic buffer dependency (SCC of {} directed links) under {}: once every buffer on the cycle fills, the {} gate freezes all of them — permanent deadlock (Fig. 1)",
                        scc.len(),
                        spec.fc.name(),
                        if matches!(spec.fc, FcConfig::Pfc(_) | FcConfig::Dcfit(_)) {
                            "PAUSE"
                        } else {
                            "credit"
                        }
                    ),
                    format!(
                        "use a GFC variant (no hold-and-wait, Theorem 4.1/5.1), or {break_hint}"
                    ),
                );
            }
        } else if spec.fc.is_gfc() {
            push(
                report,
                Code::Gfc011,
                Severity::Info,
                subject,
                format!(
                    "cyclic buffer dependency present, but {} never hold-and-waits: the deepest stage keeps trickling and the cycle drains (Theorem 4.1/5.1)",
                    spec.fc.name()
                ),
                "no action needed while the GFC bounds (GFC001–GFC003) hold".into(),
            );
        } else if matches!(spec.fc, FcConfig::Bfc(_)) {
            push(
                report,
                Code::Gfc011,
                Severity::Info,
                subject,
                "cyclic buffer dependency present, but BFC's gate is per-flow: a paused flow's backpressure chain ends at its destination host (which always drains), so no port-wide circular wait forms".into(),
                "no action needed while flows terminate at hosts; the aggregate backstop still drops under pathological fan-in".into(),
            );
        } else {
            push(
                report,
                Code::Gfc011,
                Severity::Info,
                subject,
                "cyclic buffer dependency present, but the fabric is lossy: overflow drops packets instead of pausing, so no deadlock (at the price of loss)".into(),
                "enable a GFC variant for losslessness without deadlock".into(),
            );
        }
    }

    // GFC012 — the exact verdict from peeling the witnessed graph.
    if exact_free {
        push(
            report,
            Code::Gfc012,
            Severity::Info,
            format!(
                "dependency peeling: {} vertices drained in {} rounds",
                peel.peeled, peel.rounds
            ),
            "exact deadlock-freedom certificate: every host-realizable buffer dependency eventually drains, so no circular wait is sustainable under any flow-control scheme".into(),
            "no action needed".into(),
        );
    } else if spec.fc.has_hard_gate() {
        push(
            report,
            Code::Gfc012,
            Severity::Error,
            format!(
                "dependency peeling: {} of {} vertices survive every round",
                peel.residual.len(),
                peel.peeled + peel.residual.len()
            ),
            format!(
                "exact analysis confirms the threat: {} directed links can sustain a circular wait, and {} hold-and-waits on it",
                peel.residual.len(),
                spec.fc.name()
            ),
            "see GFC013 for the smallest re-routing that breaks each residual component".into(),
        );
    } else {
        push(
            report,
            Code::Gfc012,
            Severity::Info,
            format!(
                "dependency peeling: {} of {} vertices survive every round",
                peel.residual.len(),
                peel.peeled + peel.residual.len()
            ),
            format!(
                "a sustainable circular wait exists, but {} cannot freeze on it",
                if spec.fc.is_gfc() {
                    spec.fc.name()
                } else if matches!(spec.fc, FcConfig::Bfc(_)) {
                    "BFC's per-flow gate"
                } else {
                    "a lossy fabric"
                }
            ),
            "keep the scheme sound (GFC001–GFC003) or accept loss; a hard-gated scheme here would deadlock".into(),
        );
    }

    // GFC013 — break-set advisories, only for genuinely susceptible fabrics.
    if report.deadlock_susceptible {
        for scc in witnessed.condensation().cyclic_by_size() {
            let brk = witnessed.break_set(scc);
            let labels: Vec<String> =
                brk.iter().map(|&v| render::dirlink_label(topo, DirLink::from_index(v))).collect();
            push(
                report,
                Code::Gfc013,
                Severity::Warning,
                format!(
                    "SCC of {} directed links: {}",
                    scc.len(),
                    render_dirlink_cycle(topo, &witnessed.cycle_in_scc(scc), render::CHAIN_MAX_HOPS)
                ),
                format!(
                    "re-routing traffic off {} directed link(s) acyclifies this component: {}",
                    brk.len(),
                    render::render_chain(&labels, ", ", render::CHAIN_MAX_HOPS)
                ),
                "steer the listed links' flows onto an acyclic overlay (up/down or spanning-tree routing), then re-run preflight".into(),
            );
        }
    }
}

/// The conservative dependency graph — the basis of the GFC011 prefilter.
///
/// SPF routing contributes the full all-pairs equal-cost union (Table 1).
/// Static routing contributes its configured paths *exactly*, plus the
/// SPF fallback's DAGs for only those host pairs that actually lack a
/// configured path — a fully configured fabric is judged purely on its
/// own routes instead of being drowned in phantom all-pairs edges.
fn conservative_depgraph(topo: &Topology, routing: &Routing) -> DepGraph {
    match routing {
        Routing::Spf(_) => all_pairs_depgraph(topo),
        Routing::Static { paths, .. } => {
            let flows: Vec<_> =
                paths.iter().map(|(&(src, _), links)| (src, links.clone())).collect();
            let mut g = depgraph_for_flows(topo, &flows);
            let hosts = topo.hosts();
            let unconfigured: Vec<(NodeId, Vec<NodeId>)> = hosts
                .iter()
                .filter_map(|&dst| {
                    let srcs: Vec<NodeId> = hosts
                        .iter()
                        .copied()
                        .filter(|&src| src != dst && !paths.contains_key(&(src, dst)))
                        .collect();
                    (!srcs.is_empty()).then_some((dst, srcs))
                })
                .collect();
            spf_depgraph_for_pairs(topo, &unconfigured, &mut g);
            g
        }
    }
}

/// The witnessed dependency graph GFC012 peels: only dependencies some
/// complete host-to-host flow can exercise. For static routing the
/// conservative graph is already flow-exact, so it is reused as-is.
fn witnessed_depgraph(topo: &Topology, routing: &Routing, conservative: &DepGraph) -> DepGraph {
    match routing {
        Routing::Spf(_) => realizable_all_pairs_depgraph(topo),
        Routing::Static { .. } => conservative.clone(),
    }
}

/// Break-set fragment for a GFC011 hint, e.g.
/// `re-route off 1 directed link(s): S2→S3`.
fn break_set_hint(topo: &Topology, g: &DepGraph, scc: &Scc) -> String {
    let brk = g.break_set(scc);
    let labels: Vec<String> =
        brk.iter().map(|&v| render::dirlink_label(topo, DirLink::from_index(v))).collect();
    format!(
        "re-route off {} directed link(s): {}",
        brk.len(),
        render::render_chain(&labels, ", ", render::CHAIN_MAX_HOPS)
    )
}
