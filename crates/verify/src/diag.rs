//! The diagnostic model: stable codes, severities, and the report.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational note; nothing to fix.
    Info,
    /// Legal but dubious: performance loss, wasted buffer, or a bound met
    /// with no margin.
    Warning,
    /// The configuration violates a soundness condition (a theorem
    /// precondition, a lossless invariant, or a deadlock precondition is
    /// met by a hard-gated scheme).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes. Numbers are append-only: a code never changes
/// meaning once released (tools and docs key off them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Code {
    /// Conceptual GFC violates Theorem 4.1 (`B0 ≤ Bm − 4·C·τ`).
    Gfc001,
    /// Buffer-based GFC violates the §4.2 bound (`B1 ≤ Bm − 2·C·τ`).
    Gfc002,
    /// Time-based GFC violates Theorem 5.1
    /// (`B0 ≤ Bm − (√(τ/T)+1)²·C·T`).
    Gfc003,
    /// PFC XOFF threshold leaves too little headroom above XOFF.
    Gfc004,
    /// PFC XON/XOFF hysteresis is degenerate or too narrow.
    Gfc005,
    /// CBFC credit sizing cannot cover the bandwidth–delay product.
    Gfc006,
    /// The buffer-GFC stage table is malformed (non-monotone thresholds,
    /// rates off the `R_k = C·ratio^k` law, or a ratio beyond Eq. (3)'s
    /// 3/4 admissibility limit).
    Gfc007,
    /// Rate-limiter register ranges are unsound (§5.3/§7 minimum unit).
    Gfc008,
    /// `Bm` is inconsistent with the physical buffer size.
    Gfc009,
    /// Feedback period is out of its sane range (control-message flood or
    /// stale feedback).
    Gfc010,
    /// Cyclic-buffer-dependency susceptibility verdict for the
    /// topology + routing + scheme combination (per-SCC findings from the
    /// conservative all-pairs union).
    Gfc011,
    /// Exact deadlock-freedom verdict by iterative peeling of the
    /// host-realizable dependency graph (the Mendlovic–Matias condition:
    /// deadlock-free iff the residual graph empties).
    Gfc012,
    /// Break-set advisory for genuinely susceptible fabrics: the directed
    /// links whose removal (re-routing) acyclifies each residual
    /// component, ranked by component size.
    Gfc013,
}

impl Code {
    /// Every code, in numeric order (the SARIF rule table).
    pub const ALL: [Code; 13] = [
        Code::Gfc001,
        Code::Gfc002,
        Code::Gfc003,
        Code::Gfc004,
        Code::Gfc005,
        Code::Gfc006,
        Code::Gfc007,
        Code::Gfc008,
        Code::Gfc009,
        Code::Gfc010,
        Code::Gfc011,
        Code::Gfc012,
        Code::Gfc013,
    ];

    /// The stable string form, e.g. `"GFC004"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Gfc001 => "GFC001",
            Code::Gfc002 => "GFC002",
            Code::Gfc003 => "GFC003",
            Code::Gfc004 => "GFC004",
            Code::Gfc005 => "GFC005",
            Code::Gfc006 => "GFC006",
            Code::Gfc007 => "GFC007",
            Code::Gfc008 => "GFC008",
            Code::Gfc009 => "GFC009",
            Code::Gfc010 => "GFC010",
            Code::Gfc011 => "GFC011",
            Code::Gfc012 => "GFC012",
            Code::Gfc013 => "GFC013",
        }
    }

    /// One-line description of what the code checks (the DESIGN.md table).
    pub fn title(self) -> &'static str {
        match self {
            Code::Gfc001 => "conceptual GFC Theorem 4.1 precondition",
            Code::Gfc002 => "buffer-based GFC B1 bound (Bm − 2·C·τ)",
            Code::Gfc003 => "time-based GFC Theorem 5.1 precondition",
            Code::Gfc004 => "PFC XOFF headroom soundness",
            Code::Gfc005 => "PFC XON/XOFF hysteresis",
            Code::Gfc006 => "CBFC credit sizing vs. round-trip",
            Code::Gfc007 => "stage-table geometry (monotonicity, rate law)",
            Code::Gfc008 => "rate-limiter register ranges",
            Code::Gfc009 => "Bm vs. physical buffer consistency",
            Code::Gfc010 => "feedback-period sanity",
            Code::Gfc011 => "cyclic-buffer-dependency susceptibility (per SCC)",
            Code::Gfc012 => "exact deadlock-freedom (dependency peeling)",
            Code::Gfc013 => "break-set advisory for susceptible fabrics",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a stable code, a severity, the offending parameter or
/// link, what is wrong, and a one-line fix hint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code (`GFC001`…).
    pub code: Code,
    /// Severity of the finding.
    pub severity: Severity,
    /// The offending parameter or link, e.g. `fc.xoff = 286720 B` or
    /// `routing: S1→S2 → S2→S3 → S3→S1`.
    pub subject: String,
    /// One-line statement of the problem.
    pub message: String,
    /// One-line fix hint.
    pub hint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        writeln!(f, "  --> {}", self.subject)?;
        write!(f, "  = help: {}", self.hint)
    }
}

/// The condensed outcome the experiments record next to their runtime
/// deadlock verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticVerdict {
    /// The topology + routing admits a cyclic buffer dependency in the
    /// conservative all-pairs union graph (the Table 1 prefilter).
    pub cbd_prone: bool,
    /// Deadlock is actually reachable: the host-realizable dependency
    /// graph does not peel empty *and* the scheme hold-and-waits.
    pub deadlock_susceptible: bool,
    /// The exact GFC012 result: the host-realizable dependency graph
    /// peels empty, so no deadlock is reachable under any scheme.
    pub exact_deadlock_free: bool,
    /// Error-level findings.
    pub errors: usize,
    /// Warning-level findings.
    pub warnings: usize,
}

impl fmt::Display for StaticVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shape = match (self.cbd_prone, self.deadlock_susceptible, self.exact_deadlock_free) {
            (_, true, _) => "CBD + hard gate: deadlock reachable",
            (true, false, true) => "CBD-prone but exactly deadlock-free (peeling empties)",
            (true, false, false) => "CBD present, scheme immune",
            (false, false, _) => "no CBD: deadlock-free",
        };
        write!(f, "{shape} ({} errors, {} warnings)", self.errors, self.warnings)
    }
}

/// The ordered list of findings from one preflight run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    diags: Vec<Diagnostic>,
    /// Set by the CBD check; folded into [`Report::verdict`].
    pub(crate) cbd_prone: bool,
    pub(crate) deadlock_susceptible: bool,
    pub(crate) exact_deadlock_free: bool,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// All findings, in check order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of findings at `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == sev).count()
    }

    /// Whether any Error-level finding is present.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// The condensed verdict for experiment tables.
    pub fn verdict(&self) -> StaticVerdict {
        StaticVerdict {
            cbd_prone: self.cbd_prone,
            deadlock_susceptible: self.deadlock_susceptible,
            exact_deadlock_free: self.exact_deadlock_free,
            errors: self.count(Severity::Error),
            warnings: self.count(Severity::Warning),
        }
    }

    /// One-line summary, e.g. for a table cell.
    pub fn summary(&self) -> String {
        format!("static: {}", self.verdict())
    }

    /// Render the full lint-style report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "preflight: {} errors, {} warnings, {} notes — {}\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
            self.verdict(),
        ));
        out
    }

    /// Stable machine-readable JSON: the verdict plus every finding, in
    /// check order. Field names are part of the tool's output contract.
    pub fn to_json(&self) -> String {
        let v = self.verdict();
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"verdict\": {{\"cbd_prone\": {}, \"deadlock_susceptible\": {}, \
             \"exact_deadlock_free\": {}, \"errors\": {}, \"warnings\": {}}},\n",
            v.cbd_prone, v.deadlock_susceptible, v.exact_deadlock_free, v.errors, v.warnings
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"code\": \"{}\", \"severity\": \"{}\", \"subject\": {}, \
                 \"message\": {}, \"hint\": {}}}",
                d.code,
                d.severity,
                json_string(&d.subject),
                json_string(&d.message),
                json_string(&d.hint)
            ));
        }
        if !self.diags.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// SARIF 2.1.0: one run of the `gfc-verify` driver, every [`Code`] as
    /// a rule, every finding as a result whose logical location names the
    /// offending parameter or link.
    pub fn to_sarif(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(
            "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
             \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
             \"driver\": {\n          \"name\": \"gfc-verify\",\n          \"rules\": [",
        );
        for (i, code) in Code::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": {}}}}}",
                code,
                json_string(code.title())
            ));
        }
        out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let level = match d.severity {
                Severity::Info => "note",
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            out.push_str(&format!(
                "\n        {{\"ruleId\": \"{}\", \"level\": \"{}\", \
                 \"message\": {{\"text\": {}}}, \"locations\": [{{\"logicalLocations\": \
                 [{{\"name\": {}}}]}}]}}",
                d.code,
                level,
                json_string(&format!("{} (help: {})", d.message, d.hint)),
                json_string(&d.subject)
            ));
        }
        if !self.diags.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }\n  ]\n}\n");
        out
    }
}

/// Escape `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shape() {
        let mut r = Report::new();
        r.push(Diagnostic {
            code: Code::Gfc004,
            severity: Severity::Error,
            subject: "fc.xoff = 300000 B".into(),
            message: "headroom above XOFF is 0 B, below C·τ".into(),
            hint: "lower XOFF".into(),
        });
        let text = r.render();
        assert!(text.contains("error[GFC004]"), "{text}");
        assert!(text.contains("--> fc.xoff"), "{text}");
        assert!(text.contains("= help: lower XOFF"), "{text}");
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 0);
    }

    #[test]
    fn verdict_wording() {
        let mut r = Report::new();
        assert!(r.summary().contains("no CBD"));
        r.cbd_prone = true;
        assert!(r.summary().contains("scheme immune"));
        r.exact_deadlock_free = true;
        assert!(r.summary().contains("exactly deadlock-free"));
        r.deadlock_susceptible = true;
        assert!(r.summary().contains("deadlock reachable"));
    }

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::Gfc001.as_str(), "GFC001");
        assert_eq!(Code::Gfc011.as_str(), "GFC011");
        assert_eq!(Code::Gfc012.as_str(), "GFC012");
        assert_eq!(Code::Gfc013.as_str(), "GFC013");
        assert_eq!(format!("{}", Code::Gfc007), "GFC007");
        assert_eq!(Code::ALL.len(), 13);
    }

    fn sample_report() -> Report {
        let mut r = Report::new();
        r.cbd_prone = true;
        r.exact_deadlock_free = true;
        r.push(Diagnostic {
            code: Code::Gfc011,
            severity: Severity::Info,
            subject: "routing: S1→S2 ⇒ S2→S3".into(),
            message: "SCC of 2 directed links is \"cyclic\"".into(),
            hint: "see GFC012: the realizable graph peels empty".into(),
        });
        r
    }

    #[test]
    fn json_shape_and_escaping() {
        let text = sample_report().to_json();
        assert!(text.contains("\"cbd_prone\": true"), "{text}");
        assert!(text.contains("\"exact_deadlock_free\": true"), "{text}");
        assert!(text.contains("\"code\": \"GFC011\""), "{text}");
        assert!(text.contains("\"severity\": \"info\""), "{text}");
        // The inner quotes of the message must be escaped.
        assert!(text.contains("\\\"cyclic\\\""), "{text}");
        assert!(!text.contains(": \"SCC of 2 directed links is \"cyclic\""), "{text}");
    }

    #[test]
    fn sarif_shape() {
        let text = sample_report().to_sarif();
        assert!(text.contains("\"version\": \"2.1.0\""), "{text}");
        assert!(text.contains("sarif-2.1.0.json"), "{text}");
        assert!(text.contains("\"name\": \"gfc-verify\""), "{text}");
        // Every rule is listed once, findings map severity to SARIF level.
        for code in Code::ALL {
            assert!(text.contains(&format!("\"id\": \"{code}\"")), "{text}");
        }
        assert!(text.contains("\"ruleId\": \"GFC011\""), "{text}");
        assert!(text.contains("\"level\": \"note\""), "{text}");
        assert!(text.contains("\"logicalLocations\""), "{text}");
    }

    #[test]
    fn empty_report_serializes_cleanly() {
        let r = Report::new();
        assert!(r.to_json().contains("\"diagnostics\": []"), "{}", r.to_json());
        assert!(r.to_sarif().contains("\"results\": []"), "{}", r.to_sarif());
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
