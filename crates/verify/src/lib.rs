//! # gfc-verify — static preflight analysis for GFC configurations
//!
//! A lint pass over `(Topology, Routing, FabricSpec)` that checks every
//! soundness condition the paper states *before* a simulation (or a real
//! deployment) runs, and reports findings as stable, lint-style
//! diagnostics:
//!
//! ```text
//! error[GFC011]: cyclic buffer dependency under PFC: once every buffer on
//! the cycle fills, the PAUSE gate freezes all of them — permanent
//! deadlock (Fig. 1)
//!   --> routing: S1→S2 ⇒ S2→S3 ⇒ S3→S1
//!   = help: use a GFC variant (no hold-and-wait, Theorem 4.1/5.1), or
//!           re-route to break the cycle
//! ```
//!
//! ## Checks
//!
//! | code | severity | condition |
//! |---|---|---|
//! | GFC001 | Error | conceptual GFC: `B0 ≤ Bm − 4·C·τ` (Theorem 4.1) |
//! | GFC002 | Error | buffer GFC: `B1 ≤ Bm − 2·C·τ` (§4.2) |
//! | GFC003 | Error | time GFC: `B0 ≤ Bm − (√(τ/T)+1)²·C·T` (Theorem 5.1) |
//! | GFC004 | Error/Warning | PFC XOFF headroom ≥ `C·τ` (Error) / ≥ `2·C·τ + MTU` (Warning) |
//! | GFC005 | Error/Warning | PFC hysteresis: `XON < XOFF`, gap ≥ MTU |
//! | GFC006 | Warning/Info | CBFC credits cover `C·(2·t_w + t_r + T) + MTU` |
//! | GFC007 | Error | stage table: monotone thresholds, `R_k = C·ratio^k`, ratio ≤ 3/4 (Eq. 3), deepest stage > 0 |
//! | GFC008 | Error/Warning/Info | rate-limiter registers: floor ≤ C, floor > 0, stage clamping |
//! | GFC009 | Error/Info | `Bm ≤ buffer` (unused space above `Bm` is a note) |
//! | GFC010 | Error/Warning | feedback period positive, ≥ one MTU time |
//! | GFC011 | Error/Info | CBD susceptibility, one finding per cyclic SCC of the conservative dependency graph |
//! | GFC012 | Error/Info | exact deadlock-freedom: the host-realizable graph peels empty (Info certificate) or leaves a residual (Error under a hard gate) |
//! | GFC013 | Warning | break-set advisory per residual component, ranked by size |
//!
//! GFC011 condenses the conservative (Table 1 prefilter) graph with an
//! iterative Tarjan pass, so a cyclic fabric is reported per strongly
//! connected component with a representative cycle and a break-set hint.
//! GFC012 is exact for this simulator's model (deterministic source
//! routing into shared lossless FIFO buffers): it peels the witnessed
//! dependency graph and can downgrade a cyclic-but-safe GFC011 finding —
//! e.g. the sparse ring, whose all-pairs union cycles but whose
//! host-realizable graph drains — from Error to Info.
//!
//! Reports render as lint text ([`Report::render`]), stable JSON
//! ([`Report::to_json`]), and SARIF 2.1.0 ([`Report::to_sarif`]) for CI
//! upload:
//!
//! ```text
//! cargo run --release --example preflight -- corpus --sarif-dir target/sarif
//! ```
//!
//! The simulator runs this pass from `Network::new` (see the
//! `SimConfig::preflight` policy) and the experiment harness prints the
//! report next to each scenario's runtime deadlock verdict; the crate has
//! no simulator dependency, so the same pass can vet a configuration
//! before it exists anywhere but on paper.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod checks;
mod diag;
mod spec;

pub use diag::{Code, Diagnostic, Report, Severity, StaticVerdict};
pub use spec::{FabricSpec, PreflightPolicy};

use gfc_topology::{Routing, Topology};

/// Run every check against a fabric: parameter soundness from the spec
/// alone, plus the CBD-susceptibility verdict from topology + routing.
pub fn preflight(topo: &Topology, routing: &Routing, spec: &FabricSpec) -> Report {
    let mut report = Report::new();
    checks::check_parameters(spec, &mut report);
    checks::check_cbd(topo, routing, spec, &mut report);
    report
}

/// Check only the fabric parameters (no topology at hand): GFC001–GFC010.
pub fn preflight_params(spec: &FabricSpec) -> Report {
    let mut report = Report::new();
    checks::check_parameters(spec, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfc_core::fc_mode::FcMode;
    use gfc_core::theorems;
    use gfc_core::units::{kb, Dur, Rate};
    use gfc_topology::cbd::all_pairs_depgraph;
    use gfc_topology::{Ring, Routing, SparseRing};

    /// The §6.2.2 fabric: 10G CEE, 300 KB buffers, τ ≈ 7.4 µs.
    fn spec_10g(fc: impl Into<gfc_core::fc_config::FcConfig>) -> FabricSpec {
        FabricSpec {
            capacity: Rate::from_gbps(10),
            mtu: 1500,
            buffer_bytes: kb(300),
            t_wire: Dur::from_micros(1),
            t_proc: Dur::from_micros(3),
            fc: fc.into(),
            min_rate_unit: Rate::from_kbps(8),
        }
    }

    fn codes(r: &Report, sev: Severity) -> Vec<Code> {
        r.diagnostics().iter().filter(|d| d.severity == sev).map(|d| d.code).collect()
    }

    #[test]
    fn paper_gfc_buffer_config_is_clean() {
        let r = preflight_params(&spec_10g(FcMode::GfcBuffer { bm: kb(300), b1: kb(281) }));
        assert!(!r.has_errors(), "{}", r.render());
    }

    #[test]
    fn theorem_41_violation_is_an_error() {
        // B0 above Bm − 4·C·τ (4·C·τ = 37 KB at 10G): flagged.
        let bm = kb(300);
        let bad_b0 = bm - kb(10);
        let r = preflight_params(&spec_10g(FcMode::Conceptual {
            b0: bad_b0,
            bm,
            tau: Dur::from_micros_f64(7.4),
        }));
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc001), "{}", r.render());
        assert!(r.render().contains("Theorem 4.1"), "{}", r.render());
    }

    #[test]
    fn theorem_41_unsatisfiable_buffer_is_an_error() {
        // Fig. 5's impossible case: 100 KB buffer, τ = 25 µs → 4Cτ = 125 KB.
        let mut spec =
            spec_10g(FcMode::Conceptual { b0: kb(50), bm: kb(100), tau: Dur::from_micros(25) });
        spec.buffer_bytes = kb(100);
        let r = preflight_params(&spec);
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc001), "{}", r.render());
        assert!(r.render().contains("unsatisfiable"), "{}", r.render());
    }

    #[test]
    fn b1_bound_violation_is_an_error() {
        // B1 within 2·C·τ of Bm (2·C·τ = 18.5 KB): stage-1 feedback late.
        let r = preflight_params(&spec_10g(FcMode::GfcBuffer { bm: kb(300), b1: kb(300) - 1000 }));
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc002), "{}", r.render());
    }

    #[test]
    fn theorem_51_violation_is_an_error() {
        let c = Rate::from_gbps(10);
        let period = theorems::cbfc_recommended_period(c);
        let r = preflight_params(&spec_10g(FcMode::GfcTime { b0: kb(290), bm: kb(300), period }));
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc003), "{}", r.render());
    }

    #[test]
    fn paper_time_gfc_config_is_clean() {
        let c = Rate::from_gbps(10);
        let period = theorems::cbfc_recommended_period(c);
        let r = preflight_params(&spec_10g(FcMode::GfcTime { b0: kb(159), bm: kb(300), period }));
        assert!(!r.has_errors(), "{}", r.render());
    }

    #[test]
    fn pfc_overflow_headroom_is_an_error() {
        // XOFF at the very top of the buffer: in-flight data has nowhere
        // to land.
        let r = preflight_params(&spec_10g(FcMode::Pfc { xoff: kb(300) - 100, xon: kb(280) }));
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc004), "{}", r.render());
    }

    #[test]
    fn pfc_tight_headroom_is_a_warning() {
        // Headroom exactly C·τ (the 802.1Qbb minimum): no Error, but the
        // conservative 2·C·τ + MTU provisioning note fires.
        let spec = spec_10g(FcMode::None);
        let xoff = kb(300) - spec.ctau_bytes();
        let r = preflight_params(&spec_10g(FcMode::Pfc { xoff, xon: xoff - 3000 }));
        assert!(!r.has_errors(), "{}", r.render());
        assert!(codes(&r, Severity::Warning).contains(&Code::Gfc004), "{}", r.render());
    }

    #[test]
    fn pfc_degenerate_hysteresis_is_an_error() {
        let r = preflight_params(&spec_10g(FcMode::Pfc { xoff: kb(280), xon: kb(280) }));
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc005), "{}", r.render());
    }

    #[test]
    fn cbfc_undersized_credits_warn() {
        // 16 KB of buffer cannot cover the ~72 KB bandwidth–delay product
        // of a 52.4 µs feedback loop at 10G.
        let c = Rate::from_gbps(10);
        let mut spec = spec_10g(FcMode::Cbfc { period: theorems::cbfc_recommended_period(c) });
        spec.buffer_bytes = kb(16);
        let r = preflight_params(&spec);
        assert!(codes(&r, Severity::Warning).contains(&Code::Gfc006), "{}", r.render());
    }

    #[test]
    fn stage_ratio_beyond_eq3_is_an_error() {
        let spec = spec_10g(gfc_core::fc_config::FcConfig::GfcBuffer(
            gfc_core::fc_config::GfcBufferParams {
                bm: kb(300),
                b1: kb(281),
                stage_ratio: (7, 8), // > 3/4
            },
        ));
        let r = preflight_params(&spec);
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc007), "{}", r.render());
    }

    #[test]
    fn pacing_floor_above_line_rate_is_an_error() {
        let mut spec = spec_10g(FcMode::GfcBuffer { bm: kb(300), b1: kb(281) });
        spec.min_rate_unit = Rate::from_gbps(40);
        let r = preflight_params(&spec);
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc008), "{}", r.render());
    }

    #[test]
    fn bm_beyond_buffer_is_an_error() {
        let r = preflight_params(&spec_10g(FcMode::GfcBuffer { bm: kb(301), b1: kb(281) }));
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc009), "{}", r.render());
    }

    #[test]
    fn zero_period_is_an_error() {
        let r = preflight_params(&spec_10g(FcMode::Cbfc { period: Dur::ZERO }));
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc010), "{}", r.render());
    }

    #[test]
    fn clockwise_ring_under_pfc_is_flagged() {
        // The Fig. 1/Fig. 9 setup: clockwise two-hop routes on a 3-switch
        // ring form a CBD; PFC's PAUSE gate makes the deadlock reachable.
        let ring = Ring::new(3);
        let routing = Routing::fixed(ring.clockwise_routes());
        let spec = spec_10g(FcMode::Pfc { xoff: kb(280), xon: kb(277) });
        let r = preflight(&ring.topo, &routing, &spec);
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc011), "{}", r.render());
        // The exact analysis agrees (GFC012 Error) and the break-set
        // advisory names a way out (GFC013 Warning).
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc012), "{}", r.render());
        assert!(codes(&r, Severity::Warning).contains(&Code::Gfc013), "{}", r.render());
        assert!(r.render().contains("re-routing traffic off"), "{}", r.render());
        let v = r.verdict();
        assert!(v.cbd_prone && v.deadlock_susceptible && !v.exact_deadlock_free);
    }

    #[test]
    fn clockwise_ring_under_dcfit_is_flagged_like_pfc() {
        // DCFIT detects deadlock at runtime but does not prevent it: the
        // static analysis must report it exactly as susceptible as PFC.
        use gfc_core::fc_config::{DcfitParams, FcConfig};
        let ring = Ring::new(3);
        let routing = Routing::fixed(ring.clockwise_routes());
        let spec = spec_10g(FcConfig::Dcfit(DcfitParams { xoff: kb(280), xon: kb(277) }));
        let r = preflight(&ring.topo, &routing, &spec);
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc011), "{}", r.render());
        assert!(r.render().contains("PAUSE"), "{}", r.render());
        assert!(r.verdict().deadlock_susceptible);
    }

    #[test]
    fn clockwise_ring_under_bfc_is_safe_per_flow() {
        use gfc_core::bfc::BfcConfig;
        use gfc_core::fc_config::FcConfig;
        let ring = Ring::new(3);
        let routing = Routing::fixed(ring.clockwise_routes());
        let spec = spec_10g(FcConfig::Bfc(BfcConfig::derive(kb(300), 1500)));
        let r = preflight(&ring.topo, &routing, &spec);
        assert!(!r.has_errors(), "{}", r.render());
        let v = r.verdict();
        assert!(v.cbd_prone && !v.deadlock_susceptible, "{}", r.render());
        assert!(r.render().contains("per-flow"), "{}", r.render());
    }

    #[test]
    fn bfc_degenerate_hysteresis_is_an_error() {
        use gfc_core::bfc::BfcConfig;
        use gfc_core::fc_config::FcConfig;
        let cfg =
            BfcConfig { flow_xoff: kb(12), flow_xon: kb(12), agg_xoff: kb(280), agg_xon: kb(277) };
        let r = preflight_params(&spec_10g(FcConfig::Bfc(cfg)));
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc005), "{}", r.render());
    }

    #[test]
    fn bfc_backstop_without_headroom_is_an_error() {
        use gfc_core::bfc::BfcConfig;
        use gfc_core::fc_config::FcConfig;
        let cfg = BfcConfig {
            flow_xoff: kb(12),
            flow_xon: kb(10),
            agg_xoff: kb(300) - 100,
            agg_xon: kb(290),
        };
        let r = preflight_params(&spec_10g(FcConfig::Bfc(cfg)));
        assert!(codes(&r, Severity::Error).contains(&Code::Gfc004), "{}", r.render());
    }

    #[test]
    fn clockwise_ring_under_gfc_is_safe() {
        let ring = Ring::new(3);
        let routing = Routing::fixed(ring.clockwise_routes());
        let spec = spec_10g(FcMode::GfcBuffer { bm: kb(300), b1: kb(281) });
        let r = preflight(&ring.topo, &routing, &spec);
        assert!(!r.has_errors(), "{}", r.render());
        let v = r.verdict();
        assert!(v.cbd_prone && !v.deadlock_susceptible);
    }

    #[test]
    fn ring_under_spf_is_cbd_free() {
        // Shortest paths on the triangle use the direct links — no CBD, so
        // even PFC is statically safe here.
        let ring = Ring::new(3);
        let routing = Routing::spf();
        let spec = spec_10g(FcMode::Pfc { xoff: kb(280), xon: kb(277) });
        let r = preflight(&ring.topo, &routing, &spec);
        assert!(!r.has_errors(), "{}", r.render());
        assert!(!r.verdict().cbd_prone);
    }

    #[test]
    fn cycle_rendering_names_switches() {
        let ring = Ring::new(3);
        let routing = Routing::fixed(ring.clockwise_routes());
        let spec = spec_10g(FcMode::Cbfc {
            period: theorems::cbfc_recommended_period(Rate::from_gbps(10)),
        });
        let r = preflight(&ring.topo, &routing, &spec);
        let text = r.render();
        assert!(text.contains("→"), "cycle rendering missing: {text}");
        assert!(text.contains("error[GFC011]"), "{text}");
    }

    #[test]
    fn sparse_ring_prefilter_cries_wolf_but_gfc012_downgrades() {
        // Hosts on alternating switches: the all-pairs union still carries
        // both full ring cycles, but no host-realizable flow set sustains
        // them. The conservative GFC011 finding must come out as Info (not
        // Error) with the GFC012 peeling certificate alongside — even
        // under PFC, the hold-and-wait scheme.
        let ring = SparseRing::new(6, 2);
        let routing = Routing::spf();
        let spec = spec_10g(FcMode::Pfc { xoff: kb(280), xon: kb(277) });
        let r = preflight(&ring.topo, &routing, &spec);
        assert!(!r.has_errors(), "{}", r.render());
        let v = r.verdict();
        assert!(v.cbd_prone, "the prefilter should still cry wolf:\n{}", r.render());
        assert!(v.exact_deadlock_free && !v.deadlock_susceptible, "{}", r.render());
        assert!(codes(&r, Severity::Info).contains(&Code::Gfc011), "{}", r.render());
        assert!(codes(&r, Severity::Info).contains(&Code::Gfc012), "{}", r.render());
        assert!(r.render().contains("phantom"), "{}", r.render());
    }

    #[test]
    fn fully_configured_updown_fattree_is_judged_on_its_own_routes() {
        // A failed fat-tree whose all-pairs SPF union is CBD-prone, but
        // with a complete up/down route table configured. The old check
        // unconditionally unioned in the all-pairs fallback and misflagged
        // this fabric under PFC; judging only the configured routes (plus
        // SPF for pairs that actually lack one — none here) reports it
        // deadlock-free, and GFC012 certifies it.
        let (ft, routes) =
            gfc_topology::fattree::find_updown_showcase(50).expect("showcase fabric exists");
        assert!(
            all_pairs_depgraph(&ft.topo).has_cycle(),
            "the showcase must be one the all-pairs basis would misflag"
        );
        let routing = Routing::fixed(routes);
        let spec = spec_10g(FcMode::Pfc { xoff: kb(280), xon: kb(277) });
        let r = preflight(&ft.topo, &routing, &spec);
        assert!(!r.has_errors(), "{}", r.render());
        let v = r.verdict();
        assert!(!v.cbd_prone && v.exact_deadlock_free && !v.deadlock_susceptible, "{}", r.render());
    }

    #[test]
    fn partially_configured_static_routing_still_checks_unserved_pairs() {
        // Only one clockwise route configured: the other host pairs fall
        // back to SPF, whose direct-link paths are acyclic on the
        // triangle — so the combined conservative graph stays clean.
        let ring = Ring::new(3);
        let (s, d, p) = ring.clockwise_path(0);
        let routing = Routing::fixed([((s, d), p)].into_iter().collect());
        let spec = spec_10g(FcMode::Pfc { xoff: kb(280), xon: kb(277) });
        let r = preflight(&ring.topo, &routing, &spec);
        assert!(!r.has_errors(), "{}", r.render());
        assert!(!r.verdict().cbd_prone, "{}", r.render());
    }

    #[test]
    fn preflight_scales_without_recursion() {
        // 512 switches + 512 hosts under SPF: the SCC/peel pipeline must
        // complete in a deliberately tiny 256 KB stack (a recursive Tarjan
        // or DFS would overflow at this depth).
        let handle = std::thread::Builder::new()
            .stack_size(256 * 1024)
            .spawn(|| {
                let ring = Ring::new(512);
                let spec = spec_10g(FcMode::Pfc { xoff: kb(280), xon: kb(277) });
                let r = preflight(&ring.topo, &Routing::spf(), &spec);
                let v = r.verdict();
                // Internal consistency, whatever the ring's verdict:
                // susceptible ⇒ prone, and exact-free excludes susceptible.
                assert!(!v.deadlock_susceptible || v.cbd_prone);
                assert!(!(v.exact_deadlock_free && v.deadlock_susceptible));
            })
            .expect("spawn");
        handle.join().expect("preflight overflowed the stack");
    }
}
