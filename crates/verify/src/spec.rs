//! The analyzer's input: the fabric parameters that determine soundness.

use gfc_core::fc_config::FcConfig;
use gfc_core::theorems;
use gfc_core::units::{Dur, Rate};
use serde::{Deserialize, Serialize};

/// What the network builder does with the preflight report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreflightPolicy {
    /// Run the analysis and refuse to build when it finds Errors.
    Enforce,
    /// Run the analysis and keep the report, but build regardless — for
    /// deliberately unsound adversarial setups (the Fig. 9/12 deadlock
    /// demonstrations run PFC on a ring *because* it is unsound).
    Acknowledge,
    /// Do not run the analysis.
    Skip,
}

/// The physical and flow-control parameters the checks reason about —
/// a view of the simulator's `SimConfig` that keeps `gfc-verify`
/// independent of the simulator crate (the simulator depends on the
/// analyzer, not the other way around).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricSpec {
    /// Link capacity `C` (every link; the paper's fabrics are homogeneous).
    pub capacity: Rate,
    /// Maximum transmission unit, bytes.
    pub mtu: u64,
    /// Physical ingress buffer per (port, priority), bytes.
    pub buffer_bytes: u64,
    /// One-way wire latency `t_w` (the simulator's propagation delay).
    pub t_wire: Dur,
    /// Control-message processing delay `t_r`.
    pub t_proc: Dur,
    /// The flow-control scheme under test, with its parameters (the
    /// stage ratio of buffer-based GFC now travels inside
    /// [`FcConfig::GfcBuffer`] rather than as a side-channel field here).
    pub fc: FcConfig,
    /// Minimum rate-limiter unit (§7; 8 Kb/s on commodity gear).
    pub min_rate_unit: Rate,
}

impl FabricSpec {
    /// Worst-case feedback latency τ for these parameters (Eq. 6):
    /// `2·MTU/C + 2·t_w + t_r`.
    pub fn tau(&self) -> Dur {
        theorems::worst_case_tau(self.mtu, self.capacity, self.t_wire, self.t_proc)
    }

    /// `C·τ` in bytes — the in-flight data one worst-case feedback latency
    /// admits, the unit every threshold bound is expressed in.
    pub fn ctau_bytes(&self) -> u64 {
        self.capacity.bytes_in(self.tau())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_matches_paper_at_10g() {
        // §5.4: CEE at 10G has τ ≈ 7.4 µs (MTU 1500 is within 60 ns of
        // the paper's 1.5 KB figure).
        let spec = FabricSpec {
            capacity: Rate::from_gbps(10),
            mtu: 1500,
            buffer_bytes: 300 * 1024,
            t_wire: Dur::from_micros(1),
            t_proc: Dur::from_micros(3),
            fc: FcConfig::None,
            min_rate_unit: Rate::from_kbps(8),
        };
        assert!((spec.tau().as_micros_f64() - 7.4).abs() < 0.1);
        assert!((spec.ctau_bytes() as i64 - 9250).abs() < 100);
    }
}
