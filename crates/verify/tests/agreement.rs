//! Static-vs-runtime agreement: `gfc-verify` is an *over-approximation*
//! of the simulator's structural-deadlock detector. Two directions are
//! checked on randomized scenarios:
//!
//! * soundness — whenever a run actually wedges into a structural
//!   wait-for cycle, the preflight must have called the scenario
//!   deadlock-susceptible beforehand (equivalently: statically "safe"
//!   scenarios never deadlock at runtime);
//! * GFC immunity — the analyzer never flags a GFC scheme as
//!   susceptible, matching Theorems 4.1/5.1.
//!
//! The converse (statically susceptible ⇒ runtime deadlock) is *not* a
//! property in general: reaching a deadlock needs the right traffic,
//! which a static analysis cannot know. The experiment harness covers
//! that direction on the paper's case studies (Figs. 9/12, Table 1), and
//! `pfc_ring_susceptibility_is_witnessed_at_runtime` below pins it on
//! the canonical clockwise ring.
//!
//! GFC012 exactness is additionally exercised on the sparse ring: a
//! fabric the conservative GFC011 prefilter calls CBD-prone, whose
//! peeling certificate says *exactly deadlock-free* — so no scheme, PFC
//! included, may ever wedge on it under any traffic.

use gfc_core::theorems::cbfc_recommended_period;
use gfc_core::units::{kb, Dur, Rate, Time};
use gfc_sim::config::PumpPolicy;
use gfc_sim::flowgen::ClosedLoopWorkload;
use gfc_sim::{FcMode, Network, PreflightPolicy, SimConfig, TraceConfig};
use gfc_topology::{FatTree, Ring, Routing, SparseRing};
use gfc_workload::{DestPolicy, FlowSizeDist};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// The paper's §6.2.2 parameterization on the `default_10g` fabric.
fn scheme(idx: usize) -> FcMode {
    let period = cbfc_recommended_period(Rate::from_gbps(10));
    match idx % 4 {
        0 => FcMode::Pfc { xoff: kb(280), xon: kb(277) },
        1 => FcMode::Cbfc { period },
        2 => FcMode::GfcBuffer { bm: kb(300), b1: kb(281) },
        _ => FcMode::GfcTime { b0: kb(159), bm: kb(300), period },
    }
}

fn config(scheme_idx: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::default_10g();
    cfg.fc = scheme(scheme_idx).into();
    // Baselines run under the deadlock literature's proportional-sharing
    // switch, GFC under the testbed's fair discipline (DESIGN.md §8).
    cfg.pump = if scheme_idx % 4 >= 2 { PumpPolicy::RoundRobin } else { PumpPolicy::OutputQueued };
    cfg.seed = seed;
    cfg.progress_window = Dur::from_millis(1);
    // These cases are adversarial on purpose: record the verdict and run.
    cfg.preflight = PreflightPolicy::Acknowledge;
    cfg.validate();
    cfg
}

/// `(static susceptible, runtime structural deadlock)` on an `n`-switch
/// clockwise ring.
fn ring_case(n: usize, scheme_idx: usize, seed: u64) -> (bool, bool) {
    let ring = Ring::new(n);
    let routing = Routing::fixed(ring.clockwise_routes());
    let cfg = config(scheme_idx, seed);
    let susceptible = gfc_sim::preflight(&ring.topo, &routing, &cfg).verdict().deadlock_susceptible;
    let mut net = Network::new(ring.topo.clone(), routing, cfg, TraceConfig::none());
    for (i, (src, dst)) in ring.clockwise_flows().into_iter().enumerate() {
        net.run_until(Time(Dur::from_micros(200).0 * i as u64));
        net.start_flow(src, dst, None, 0).expect("clockwise route");
    }
    net.run_until(Time::from_millis(12));
    (susceptible, net.structurally_deadlocked())
}

/// `(static susceptible, runtime structural deadlock)` on a k=4 fat-tree
/// with random link failures under a random closed-loop workload.
fn fattree_case(seed: u64, scheme_idx: usize, failure_prob: f64) -> (bool, bool) {
    let mut ft = FatTree::new(4);
    let mut rng = StdRng::seed_from_u64(seed);
    ft.inject_failures(&mut rng, failure_prob);
    let cfg = config(scheme_idx, seed);
    let susceptible =
        gfc_sim::preflight(&ft.topo, &Routing::spf(), &cfg).verdict().deadlock_susceptible;
    let racks: Vec<u32> = (0..ft.hosts.len()).map(|h| ft.rack_of_host(h) as u32).collect();
    let mut net = Network::new(ft.topo.clone(), Routing::spf(), cfg, TraceConfig::none());
    net.install_workload(Box::new(ClosedLoopWorkload {
        sizes: FlowSizeDist::Uniform { min: 2_000, max: 400_000 },
        dests: DestPolicy::inter_rack(racks),
        num_hosts: ft.hosts.len(),
        prio: 0,
        stop_after: Some(Time::from_millis(2)),
    }));
    net.run_until(Time::from_millis(4));
    (susceptible, net.structurally_deadlocked())
}

/// `(static verdict, runtime structural deadlock)` on an `n`-switch
/// sparse ring (hosts on alternating switches) under persistent
/// all-pairs traffic.
fn sparse_ring_case(n: usize, scheme_idx: usize, seed: u64) -> (gfc_verify::StaticVerdict, bool) {
    let ring = SparseRing::new(n, 2);
    let routing = Routing::spf();
    let cfg = config(scheme_idx, seed);
    let verdict = gfc_sim::preflight(&ring.topo, &routing, &cfg).verdict();
    let mut net = Network::new(ring.topo.clone(), routing, cfg, TraceConfig::none());
    let mut i = 0u64;
    for &src in &ring.hosts {
        for &dst in &ring.hosts {
            if src != dst {
                net.run_until(Time(Dur::from_micros(200).0 * i));
                net.start_flow(src, dst, None, 0).expect("spf route");
                i += 1;
            }
        }
    }
    net.run_until(Time::from_millis(10));
    (verdict, net.structurally_deadlocked())
}

/// The converse direction, pinned on the canonical susceptible fabric:
/// preflight calls the PFC clockwise ring deadlock-reachable, and the run
/// indeed wedges into a structural wait-for cycle — the static Error is
/// not a false alarm.
#[test]
fn pfc_ring_susceptibility_is_witnessed_at_runtime() {
    let (susceptible, deadlocked) = ring_case(3, 0, 7);
    assert!(susceptible, "preflight must flag the PFC clockwise ring");
    assert!(deadlocked, "the flagged ring must actually wedge under saturating flows");
}

/// DCFIT config on the §6.2.2 thresholds (PFC's gate plus the
/// initial-trigger detector — no `FcMode` shorthand, it is an
/// out-of-enum backend).
fn dcfit_config(seed: u64) -> SimConfig {
    use gfc_sim::config::{DcfitParams, FcConfig};
    let mut cfg = SimConfig::default_10g();
    cfg.fc = FcConfig::Dcfit(DcfitParams { xoff: kb(280), xon: kb(277) });
    cfg.pump = PumpPolicy::OutputQueued;
    cfg.seed = seed;
    cfg.progress_window = Dur::from_millis(1);
    cfg.preflight = PreflightPolicy::Acknowledge;
    cfg.validate();
    cfg
}

/// `(static susceptible, runtime detections)` for DCFIT on the `n`-ring.
fn dcfit_ring_case(n: usize, seed: u64) -> (bool, u64) {
    let ring = Ring::new(n);
    let routing = Routing::fixed(ring.clockwise_routes());
    let cfg = dcfit_config(seed);
    let susceptible = gfc_sim::preflight(&ring.topo, &routing, &cfg).verdict().deadlock_susceptible;
    let mut net = Network::new(ring.topo.clone(), routing, cfg, TraceConfig::none());
    for (i, (src, dst)) in ring.clockwise_flows().into_iter().enumerate() {
        net.run_until(Time(Dur::from_micros(200).0 * i as u64));
        net.start_flow(src, dst, None, 0).expect("clockwise route");
    }
    net.run_until(Time::from_millis(12));
    (susceptible, net.fc_detections())
}

/// DCFIT's runtime witness agrees with the static lints in both
/// directions the paper's model supports: its initial-trigger detection
/// fires on the statically susceptible ring (the GFC011/GFC012 Error is
/// corroborated by an actual circular wait), and it never fires on the
/// sparse ring whose peeling certificate says *exactly deadlock-free* —
/// runtime detections are a subset of the statically flagged scenarios.
#[test]
fn dcfit_detections_subset_of_static_susceptibility() {
    let (susceptible, detections) = dcfit_ring_case(3, 7);
    assert!(susceptible, "preflight must flag the DCFIT (hard-gated) clockwise ring");
    assert!(detections >= 1, "DCFIT must witness the circular wait the lints predicted");

    // The certified-safe fabric: CBD-prone by the prefilter, exactly
    // deadlock-free by peeling. All-pairs saturating traffic must
    // produce zero detections — a detection here would be a false
    // positive the static certificate proves impossible.
    let ring = SparseRing::new(6, 2);
    let routing = Routing::spf();
    let cfg = dcfit_config(11);
    let verdict = gfc_sim::preflight(&ring.topo, &routing, &cfg).verdict();
    assert!(verdict.exact_deadlock_free && !verdict.deadlock_susceptible);
    let mut net = Network::new(ring.topo.clone(), routing, cfg, TraceConfig::none());
    let mut i = 0u64;
    for &src in &ring.hosts {
        for &dst in &ring.hosts {
            if src != dst {
                net.run_until(Time(Dur::from_micros(200).0 * i));
                net.start_flow(src, dst, None, 0).expect("spf route");
                i += 1;
            }
        }
    }
    net.run_until(Time::from_millis(10));
    assert!(!net.structurally_deadlocked(), "certified-safe fabric wedged");
    assert_eq!(net.fc_detections(), 0, "DCFIT detected on a certified deadlock-free fabric");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Rings: runtime structural deadlock implies the static flag, and
    /// GFC is never statically susceptible.
    #[test]
    fn ring_static_verdict_covers_runtime(
        n in 3usize..6,
        scheme_idx in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let (susceptible, deadlocked) = ring_case(n, scheme_idx, seed);
        if deadlocked {
            prop_assert!(
                susceptible,
                "scheme {scheme_idx} deadlocked on the {n}-ring but preflight called it safe"
            );
        }
        if scheme_idx >= 2 {
            prop_assert!(!susceptible, "GFC statically flagged on the {n}-ring");
        }
    }

    /// Failed fat-trees under random traffic: a statically "safe" scenario
    /// never wedges, and GFC is never statically susceptible.
    #[test]
    fn fattree_static_verdict_covers_runtime(
        seed in 0u64..10_000,
        scheme_idx in 0usize..4,
        failure_idx in 0usize..3,
    ) {
        let failure_prob = [0.0, 0.05, 0.1][failure_idx];
        let (susceptible, deadlocked) = fattree_case(seed, scheme_idx, failure_prob);
        if !susceptible {
            prop_assert!(
                !deadlocked,
                "scheme {scheme_idx} wedged at p={failure_prob} though preflight called it safe"
            );
        }
        if scheme_idx >= 2 {
            prop_assert!(!susceptible, "GFC statically flagged on the fat-tree");
        }
    }

    /// The GFC012 certificate is exact in both directions on the 6-switch
    /// sparse ring (every host pair is exactly two ring hops apart, so no
    /// realizable flow chains through another host's switch): the
    /// prefilter cries wolf (CBD-prone), the peeling verdict certifies
    /// deadlock-freedom, and no scheme ever wedges at runtime under
    /// saturating all-pairs traffic. Larger sparse rings (n ≥ 8) are
    /// genuinely susceptible — antipodal ECMP pairs realize the full ring
    /// cycle — and are covered by the susceptible direction above.
    #[test]
    fn sparse_ring_certificate_holds_at_runtime(
        scheme_idx in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let (v, deadlocked) = sparse_ring_case(6, scheme_idx, seed);
        prop_assert!(v.cbd_prone, "the all-pairs union on the 6-sparse-ring should cycle");
        prop_assert!(
            v.exact_deadlock_free && !v.deadlock_susceptible,
            "peeling must certify the 6-sparse-ring deadlock-free"
        );
        prop_assert!(
            !deadlocked,
            "scheme {scheme_idx} wedged on the certified-safe 6-sparse-ring (seed {seed})"
        );
    }
}
