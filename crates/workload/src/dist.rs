//! Flow-size distributions, including the empirical enterprise workload of
//! Fig. 15.
//!
//! The paper drives its large-scale simulations with "empirically observed
//! enterprise traffic patterns" citing the Let-It-Flow measurement study
//! [57]. The trace itself is not public; [`EmpiricalCdf::enterprise`] is a
//! piecewise log-linear fit to the published distribution (heavy-tailed:
//! most flows ≤ 10 KB, a small fraction in the MB range), which is the
//! only marginal the paper uses. Web-search and data-mining presets from
//! the same literature are included for workload-sensitivity studies.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A cumulative distribution over flow sizes in bytes, sampled by inverse
/// transform with log-linear interpolation between anchor points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    /// `(size_bytes, cumulative_probability)`, strictly increasing in both
    /// coordinates, last probability = 1.
    points: Vec<(u64, f64)>,
}

impl EmpiricalCdf {
    /// Build from anchor points; validates monotonicity and normalization.
    pub fn new(points: Vec<(u64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must strictly increase");
            assert!(w[0].1 < w[1].1, "probabilities must strictly increase");
        }
        assert!(points[0].1 >= 0.0);
        let last = points.last().unwrap().1;
        assert!((last - 1.0).abs() < 1e-9, "last cumulative probability must be 1");
        EmpiricalCdf { points }
    }

    /// The enterprise workload of Fig. 15 (fit; see module docs).
    pub fn enterprise() -> Self {
        EmpiricalCdf::new(vec![
            (250, 0.15),
            (500, 0.35),
            (1_000, 0.55),
            (2_000, 0.62),
            (10_000, 0.70),
            (64_000, 0.80),
            (256_000, 0.90),
            (1_000_000, 0.97),
            (10_000_000, 1.00),
        ])
    }

    /// The web-search workload (DCTCP measurement study).
    pub fn web_search() -> Self {
        EmpiricalCdf::new(vec![
            (6_000, 0.15),
            (13_000, 0.20),
            (19_000, 0.30),
            (33_000, 0.40),
            (53_000, 0.53),
            (133_000, 0.60),
            (667_000, 0.70),
            (1_333_000, 0.80),
            (3_333_000, 0.90),
            (6_667_000, 0.95),
            (20_000_000, 0.98),
            (30_000_000, 1.00),
        ])
    }

    /// The data-mining workload (VL2 measurement study).
    pub fn data_mining() -> Self {
        EmpiricalCdf::new(vec![
            (180, 0.10),
            (216, 0.20),
            (560, 0.30),
            (900, 0.35),
            (1_100, 0.40),
            (60_000, 0.53),
            (260_000, 0.60),
            (3_100_000, 0.70),
            (10_000_000, 0.80),
            (30_000_000, 0.90),
            (100_000_000, 0.97),
            (1_000_000_000, 1.00),
        ])
    }

    /// Inverse-transform sample (log-linear between anchors).
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.quantile(u)
    }

    /// The size at cumulative probability `u ∈ [0, 1]`.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        if u <= self.points[0].1 {
            return self.points[0].0;
        }
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                let f = (u - p0) / (p1 - p0);
                let ln = (s0 as f64).ln() + f * ((s1 as f64).ln() - (s0 as f64).ln());
                return ln.exp().round().max(1.0) as u64;
            }
        }
        self.points.last().unwrap().0
    }

    /// Approximate mean flow size (numeric integration over 10k quantiles).
    pub fn mean(&self) -> f64 {
        let n = 10_000;
        (0..n).map(|i| self.quantile((i as f64 + 0.5) / n as f64) as f64).sum::<f64>() / n as f64
    }

    /// The anchor points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }
}

/// A flow-size model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlowSizeDist {
    /// Every flow has the same size.
    Fixed(u64),
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest size.
        min: u64,
        /// Largest size (inclusive).
        max: u64,
    },
    /// Empirical CDF (e.g. the Fig. 15 enterprise workload).
    Empirical(EmpiricalCdf),
}

impl FlowSizeDist {
    /// Draw one flow size (bytes, ≥ 1).
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        match self {
            FlowSizeDist::Fixed(s) => (*s).max(1),
            FlowSizeDist::Uniform { min, max } => {
                assert!(min <= max);
                rng.gen_range(*min..=*max).max(1)
            }
            FlowSizeDist::Empirical(cdf) => cdf.sample(rng).max(1),
        }
    }

    /// Mean size in bytes.
    pub fn mean(&self) -> f64 {
        match self {
            FlowSizeDist::Fixed(s) => *s as f64,
            FlowSizeDist::Uniform { min, max } => (*min + *max) as f64 / 2.0,
            FlowSizeDist::Empirical(cdf) => cdf.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn quantile_hits_anchors() {
        let cdf = EmpiricalCdf::enterprise();
        for &(s, p) in cdf.points() {
            let q = cdf.quantile(p);
            let rel = (q as f64 - s as f64).abs() / s as f64;
            assert!(rel < 0.01, "quantile({p}) = {q}, anchor {s}");
        }
    }

    #[test]
    fn quantile_extremes() {
        let cdf = EmpiricalCdf::enterprise();
        assert_eq!(cdf.quantile(0.0), 250);
        assert_eq!(cdf.quantile(1.0), 10_000_000);
        assert_eq!(cdf.quantile(-3.0), 250);
        assert_eq!(cdf.quantile(7.0), 10_000_000);
    }

    #[test]
    fn sampling_matches_cdf() {
        let cdf = EmpiricalCdf::enterprise();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut below_1k = 0u32;
        let mut below_256k = 0u32;
        for _ in 0..n {
            let s = cdf.sample(&mut rng);
            if s <= 1_000 {
                below_1k += 1;
            }
            if s <= 256_000 {
                below_256k += 1;
            }
        }
        let f1k = below_1k as f64 / n as f64;
        let f256k = below_256k as f64 / n as f64;
        assert!((f1k - 0.55).abs() < 0.02, "P[<=1K] = {f1k}");
        assert!((f256k - 0.90).abs() < 0.02, "P[<=256K] = {f256k}");
    }

    #[test]
    fn enterprise_is_heavy_tailed() {
        let cdf = EmpiricalCdf::enterprise();
        let mean = cdf.mean();
        let median = cdf.quantile(0.5) as f64;
        assert!(mean > 10.0 * median, "mean {mean} vs median {median}");
    }

    #[test]
    fn presets_are_valid() {
        // Construction runs the validators.
        EmpiricalCdf::enterprise();
        EmpiricalCdf::web_search();
        EmpiricalCdf::data_mining();
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_nonmonotone_sizes() {
        EmpiricalCdf::new(vec![(100, 0.5), (100, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "must be 1")]
    fn rejects_unnormalized() {
        EmpiricalCdf::new(vec![(100, 0.5), (200, 0.9)]);
    }

    #[test]
    fn fixed_and_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(FlowSizeDist::Fixed(1500).sample(&mut rng), 1500);
        let u = FlowSizeDist::Uniform { min: 10, max: 20 };
        for _ in 0..100 {
            let s = u.sample(&mut rng);
            assert!((10..=20).contains(&s));
        }
        assert_eq!(u.mean(), 15.0);
    }

    #[test]
    fn zero_fixed_clamps_to_one() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(FlowSizeDist::Fixed(0).sample(&mut rng), 1);
    }
}
