//! # gfc-workload — traffic generation
//!
//! Flow-size distributions ([`dist`], including the Fig. 15 enterprise
//! workload) and destination/arrival patterns ([`patterns`], including the
//! paper's closed-loop inter-rack selection).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod patterns;

pub use dist::{EmpiricalCdf, FlowSizeDist};
pub use patterns::{DestPolicy, Poisson};
