//! Destination-selection patterns and arrival processes.
//!
//! The paper's large-scale workload (§6.2.3) is closed-loop: "each host
//! randomly chooses a destination in different racks to start a new flow;
//! once this flow is finished, the host repeats". [`DestPolicy::InterRack`]
//! implements that selection; the open-loop [`Poisson`] process is
//! provided for load-controlled sensitivity studies.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a source host picks its next destination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DestPolicy {
    /// Uniform over all other hosts.
    UniformOther,
    /// Uniform over hosts in a *different rack* (the paper's pattern).
    /// `racks[i]` is the rack id of host `i`.
    InterRack {
        /// Rack id per host index.
        racks: Vec<u32>,
    },
    /// Fixed permutation: host `i` always sends to `perm[i]`.
    Permutation {
        /// Destination per source.
        perm: Vec<u32>,
    },
    /// Everyone sends to one sink (incast).
    AllToOne {
        /// The sink host index.
        sink: u32,
    },
}

impl DestPolicy {
    /// Inter-rack policy from a rack-id-per-host table.
    pub fn inter_rack(racks: Vec<u32>) -> Self {
        assert!(!racks.is_empty());
        DestPolicy::InterRack { racks }
    }

    /// Pick a destination for `src` among `num_hosts` hosts; `None` if the
    /// policy admits no destination (e.g. a single-rack network under
    /// inter-rack, or the sink itself under all-to-one).
    pub fn pick(&self, src: usize, num_hosts: usize, rng: &mut impl Rng) -> Option<usize> {
        assert!(src < num_hosts);
        match self {
            DestPolicy::UniformOther => {
                if num_hosts < 2 {
                    return None;
                }
                let mut d = rng.gen_range(0..num_hosts - 1);
                if d >= src {
                    d += 1;
                }
                Some(d)
            }
            DestPolicy::InterRack { racks } => {
                assert_eq!(racks.len(), num_hosts, "rack table size mismatch");
                let my_rack = racks[src];
                let candidates = racks.iter().filter(|&&r| r != my_rack).count();
                if candidates == 0 {
                    return None;
                }
                let mut n = rng.gen_range(0..candidates);
                for (i, &r) in racks.iter().enumerate() {
                    if r != my_rack {
                        if n == 0 {
                            return Some(i);
                        }
                        n -= 1;
                    }
                }
                unreachable!("counted candidate not found")
            }
            DestPolicy::Permutation { perm } => {
                assert_eq!(perm.len(), num_hosts);
                let d = perm[src] as usize;
                (d != src).then_some(d)
            }
            DestPolicy::AllToOne { sink } => {
                let d = *sink as usize;
                (d != src).then_some(d)
            }
        }
    }
}

/// Poisson arrival process: exponential interarrival times with the given
/// mean, expressed in picoseconds to stay unit-consistent with `gfc-core`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Poisson {
    /// Mean interarrival time in picoseconds.
    pub mean_interarrival_ps: f64,
}

impl Poisson {
    /// Process generating `flows_per_sec` arrivals per second on average.
    pub fn per_second(flows_per_sec: f64) -> Self {
        assert!(flows_per_sec > 0.0);
        Poisson { mean_interarrival_ps: 1e12 / flows_per_sec }
    }

    /// Process that offers `load` (0..1] of a link of `capacity_bps` given
    /// a mean flow size in bytes.
    pub fn for_load(load: f64, capacity_bps: u64, mean_flow_bytes: f64) -> Self {
        assert!(load > 0.0 && load <= 1.0, "load must be in (0, 1]");
        let bytes_per_sec = capacity_bps as f64 / 8.0 * load;
        Poisson::per_second(bytes_per_sec / mean_flow_bytes)
    }

    /// Draw the next interarrival gap in picoseconds (≥ 1).
    pub fn sample_gap_ps(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = -self.mean_interarrival_ps * u.ln();
        gap.max(1.0).min(u64::MAX as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_other_never_self() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = DestPolicy::UniformOther;
        for _ in 0..1000 {
            let d = p.pick(3, 10, &mut rng).unwrap();
            assert_ne!(d, 3);
            assert!(d < 10);
        }
    }

    #[test]
    fn uniform_other_covers_everyone() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = DestPolicy::UniformOther;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(p.pick(0, 5, &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn inter_rack_never_same_rack() {
        let racks = vec![0, 0, 1, 1, 2, 2];
        let p = DestPolicy::inter_rack(racks.clone());
        let mut rng = StdRng::seed_from_u64(6);
        for src in 0..6 {
            for _ in 0..200 {
                let d = p.pick(src, 6, &mut rng).unwrap();
                assert_ne!(racks[d], racks[src]);
            }
        }
    }

    #[test]
    fn inter_rack_single_rack_is_none() {
        let p = DestPolicy::inter_rack(vec![0, 0, 0]);
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(p.pick(1, 3, &mut rng), None);
    }

    #[test]
    fn permutation_and_all_to_one() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = DestPolicy::Permutation { perm: vec![1, 2, 0] };
        assert_eq!(p.pick(0, 3, &mut rng), Some(1));
        assert_eq!(p.pick(2, 3, &mut rng), Some(0));
        let a = DestPolicy::AllToOne { sink: 2 };
        assert_eq!(a.pick(0, 3, &mut rng), Some(2));
        assert_eq!(a.pick(2, 3, &mut rng), None);
    }

    #[test]
    fn poisson_mean_is_right() {
        let p = Poisson::per_second(1000.0); // mean gap 1 ms = 1e9 ps
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let total: u128 = (0..n).map(|_| p.sample_gap_ps(&mut rng) as u128).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1e9).abs() / 1e9 < 0.02, "mean gap {mean}");
    }

    #[test]
    fn poisson_for_load_scales() {
        // 50% of 10G with 12.5 KB flows → 50k flows/s → 20 µs mean gap.
        let p = Poisson::for_load(0.5, 10_000_000_000, 12_500.0);
        assert!((p.mean_interarrival_ps - 2e7).abs() < 1.0);
    }

    #[test]
    fn poisson_gap_is_positive() {
        let p = Poisson::per_second(1e9);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..1000 {
            assert!(p.sample_gap_ps(&mut rng) >= 1);
        }
    }
}
