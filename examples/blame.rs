//! Causal blame walkthrough: run the Fig. 1 ring under PFC and under
//! buffer-based GFC with the causal stall tracker on, print each run's
//! pause-propagation trees and per-flow blame verdicts, and write the
//! DOT/CSV artifacts next to the build (`target/blame/` by default,
//! override with `GFC_BLAME_OUT=dir`).
//!
//! ```text
//! cargo run --release --example blame
//! ```
//!
//! Exits non-zero unless the separating claim holds — PFC's hard pauses
//! cascade (max hard tree depth ≥ 2, flows blamed on the wait-for
//! cycle) while GFC never hard-stops a port (max hard depth 0, zero
//! propagation victims) — so CI can use it as a smoke test.

use gfc::experiments::blame::{run_ring_scheme, SchemeBlame};
use gfc::experiments::fig09::RingParams;
use gfc::experiments::Scheme;
use std::path::Path;

fn show(b: &SchemeBlame) {
    println!("== {} on the Fig. 1 ring ==\n", b.scheme);
    println!("{}", b.rendered);
    println!(
        "episodes {} ({} hard) in {} trees; max hard depth {}; \
         verdicts: {} roots / {} victims / {} deadlock participants; \
         blamed stall {:.1} ms\n",
        b.episodes,
        b.hard_episodes,
        b.trees,
        b.max_hard_depth,
        b.congestion_roots,
        b.victims,
        b.deadlock_participants,
        b.blamed_stall_ms,
    );
}

fn write_artifacts(dir: &Path, b: &SchemeBlame) -> std::io::Result<()> {
    let slug = b.scheme.replace([' ', '-'], "_").to_lowercase();
    std::fs::write(dir.join(format!("{slug}.dot")), &b.dot)?;
    std::fs::write(dir.join(format!("{slug}_episodes.csv")), &b.episodes_csv)?;
    std::fs::write(dir.join(format!("{slug}_blame.csv")), &b.blame_csv)?;
    Ok(())
}

fn main() {
    let params = RingParams::default();
    let pfc = run_ring_scheme(&params, Scheme::Pfc);
    let gfc = run_ring_scheme(&params, Scheme::GfcBuffer);
    show(&pfc);
    show(&gfc);

    let out = std::env::var("GFC_BLAME_OUT").unwrap_or_else(|_| "target/blame".into());
    let dir = Path::new(&out);
    std::fs::create_dir_all(dir).expect("create artifact dir");
    write_artifacts(dir, &pfc).expect("write PFC artifacts");
    write_artifacts(dir, &gfc).expect("write GFC artifacts");
    println!("artifacts written to {} (DOT trees + episode/blame CSVs)", dir.display());

    // The separating claim, asserted so CI can smoke-test it.
    let mut ok = true;
    let mut check = |cond: bool, what: &str| {
        if !cond {
            eprintln!("FAIL: {what}");
            ok = false;
        }
    };
    check(pfc.structural_deadlock, "PFC must wedge the ring");
    check(
        pfc.max_hard_depth >= 2,
        &format!("PFC pauses must cascade (max hard depth {}, want >= 2)", pfc.max_hard_depth),
    );
    check(pfc.deadlock_participants > 0, "PFC's wedged flows must blame the cycle");
    check(gfc.hard_episodes == 0, "GFC must never hard-stop a port");
    check(gfc.victims == 0, "GFC must not create propagation victims");
    check(
        gfc.max_hard_depth < pfc.max_hard_depth,
        &format!(
            "GFC max tree depth {} must stay below PFC's {}",
            gfc.max_hard_depth, pfc.max_hard_depth
        ),
    );
    if !ok {
        std::process::exit(1);
    }
    println!(
        "blame separation holds: GFC hard depth {} < PFC {}",
        gfc.max_hard_depth, pfc.max_hard_depth
    );
}
