//! The §7 congestion-control interaction study (Fig. 20): an 8-to-1
//! incast with DCQCN at the hosts and buffer-based GFC in the fabric.
//! GFC acts as a safeguard during the incast transient and hands control
//! back to DCQCN in steady state.
//!
//! ```text
//! cargo run --release --example dcqcn_interaction
//! ```

use gfc_experiments::fig20::{run, Fig20Params};

fn main() {
    let r = run(Fig20Params::default());
    print!("{}", r.report());
    println!();
    println!("time     queue      DCQCN rate   GFC rate");
    for us in (0..=10_000u64).step_by(500) {
        let t = us * 1_000_000;
        let q = r.queue.value_at(t).unwrap_or(0.0) / 1024.0;
        let d = r.dcqcn_rate.value_at(t).unwrap_or(10e9) / 1e9;
        let g = r.gfc_rate.value_at(t).unwrap_or(10e9) / 1e9;
        let bar = "#".repeat((q / 10.0) as usize);
        println!("{:>5} us {:>7.1} KB {:>8.2} G {:>8.2} G  {bar}", us, q, d, g);
    }
}
