//! The §6.1 testbed experiments (Figs. 9 and 10): the three-switch ring
//! with the testbed's 1 MB buffers and 90 µs feedback latency, comparing
//! PFC vs buffer-based GFC and CBFC vs time-based GFC, with the traced
//! queue/rate evolutions of the switch port connecting to H1.
//!
//! ```text
//! cargo run --release --example deadlock_ring
//! ```

use gfc_core::units::Time;
use gfc_experiments::fig09::RingParams;
use gfc_experiments::{fig09, fig10};

fn sparkline(series: &gfc_analysis::TimeSeries, scale: f64) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    series
        .decimated(60)
        .points()
        .iter()
        .map(|&(_, v)| {
            let idx = ((v / scale) * 7.0).round().clamp(0.0, 7.0) as usize;
            GLYPHS[idx]
        })
        .collect()
}

fn main() {
    let params = RingParams { horizon: Time::from_millis(80), ..Default::default() };

    let r9 = fig09::run(params.clone());
    print!("{}", r9.report());
    println!("  PFC queue   {}", sparkline(&r9.pfc.queue, 1_048_576.0));
    println!("  GFC queue   {}", sparkline(&r9.gfc.queue, 1_048_576.0));
    println!("  PFC in-rate {}", sparkline(&r9.pfc.rate, 1e10));
    println!("  GFC in-rate {}", sparkline(&r9.gfc.rate, 1e10));
    println!();

    let r10 = fig10::run(params);
    print!("{}", r10.report());
    println!("  CBFC queue  {}", sparkline(&r10.cbfc.queue, 1_048_576.0));
    println!("  GFC queue   {}", sparkline(&r10.gfc.queue, 1_048_576.0));
}
