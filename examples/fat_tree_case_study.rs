//! The §6.2.2 fat-tree case study (Figs. 11-14): a k=4 fat-tree with
//! three failed links, four flows whose shortest paths form a CBD, and
//! the victim flow.
//!
//! ```text
//! cargo run --release --example fat_tree_case_study
//! ```

use gfc_experiments::common::fig11_scenario;
use gfc_experiments::fig12::FatTreeCaseParams;
use gfc_experiments::{fig12, fig13, fig14};
use gfc_topology::fattree::FIG11_FLOWS;
use gfc_topology::routing::walk_nodes;
use gfc_topology::SpfRouting;

fn main() {
    // Show the scenario itself first: the failures and the valley paths.
    let (ft, sc) = fig11_scenario();
    println!("Fig. 11 scenario — k=4 fat-tree, failed links:");
    for &l in &sc.failed {
        let link = ft.topo.link(l);
        println!("  {} - {}", ft.topo.node(link.a).name, ft.topo.node(link.b).name);
    }
    let mut r = SpfRouting::new();
    println!("flows (shortest paths after re-routing):");
    for (i, &(s, d)) in FIG11_FLOWS.iter().enumerate() {
        let p = r.path(&ft.topo, ft.hosts[s], ft.hosts[d], sc.flow_hashes[i]).unwrap();
        let names: Vec<String> = walk_nodes(&ft.topo, ft.hosts[s], &p)
            .unwrap()
            .iter()
            .map(|&n| ft.topo.node(n).name.clone())
            .collect();
        println!("  F{}: {}", i + 1, names.join(" -> "));
    }
    println!();

    let params = FatTreeCaseParams { seed: 12, ..Default::default() };
    print!("{}", fig12::run(params.clone()).report());
    println!();
    print!("{}", fig13::run(params.clone()).report());
    println!();
    print!("{}", fig14::run(params).report());
}
