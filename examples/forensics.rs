//! Deadlock forensics walkthrough: wedge the Fig. 1 ring under PFC and
//! dump the automatic post-mortem — wait-for cycle, per-port queue
//! occupancies, the trailing flight-recorder events, and the DOT graph —
//! then rerun under buffer-based GFC and confirm the run stays clean.
//!
//! ```text
//! cargo run --release --example forensics
//! ```
//!
//! Exits non-zero if the PFC run fails to produce a forensics report or
//! the GFC run produces one, so CI can use it as a smoke test.

use gfc::prelude::*;
use gfc_sim::config::PumpPolicy;
use gfc_sim::PreflightPolicy;

fn ring(fc: FcMode, pump: PumpPolicy) -> Network {
    let ring = Ring::new(3);
    let mut cfg = SimConfig::default_10g();
    cfg.fc = fc.into();
    cfg.pump = pump;
    // The PFC scenario is deliberately deadlock-prone (that is the point);
    // acknowledge the static preflight errors instead of refusing to build.
    cfg.preflight = PreflightPolicy::Acknowledge;
    cfg.stop_on_deadlock = true;
    // Metrics + a 4096-event flight recorder + automatic forensics.
    cfg.telemetry = TelemetryConfig::full();
    let routing = Routing::fixed(ring.clockwise_routes());
    let mut net = Network::new(ring.topo.clone(), routing, cfg, TraceConfig::none());
    for (src, dst) in ring.clockwise_flows() {
        net.start_flow(src, dst, None, 0).expect("clockwise route");
    }
    net
}

fn main() {
    println!("== PFC on the Fig. 1 ring (XOFF 280 KB / XON 277 KB) ==\n");
    let mut net = ring(FcMode::Pfc { xoff: kb(280), xon: kb(277) }, PumpPolicy::OutputQueued);
    net.run_until(Time::from_millis(20));

    let Some(report) = net.forensics() else {
        eprintln!("expected a forensics report from the PFC ring, got none");
        std::process::exit(1);
    };
    println!("{}", report.render());
    println!("-- wait-for graph (DOT; pipe into `dot -Tsvg`) --\n");
    println!("{}", report.to_dot());
    println!(
        "flight recorder: {} events buffered ({} recorded in total)",
        net.flight_recorder().len(),
        net.flight_recorder().total_recorded(),
    );
    println!("metrics: {}\n", net.metrics_snapshot().brief());

    println!("== buffer-based GFC on the same ring (Bm 300 KB / B1 281 KB) ==\n");
    let mut net = ring(FcMode::GfcBuffer { bm: kb(300), b1: kb(281) }, PumpPolicy::RoundRobin);
    net.run_until(Time::from_millis(20));
    if let Some(r) = net.forensics() {
        eprintln!("GFC run unexpectedly produced forensics:\n{}", r.render());
        std::process::exit(1);
    }
    println!("no forensics report — no wait-for cycle ever formed");
    println!("metrics: {}", net.metrics_snapshot().brief());
}
