//! Regenerate the paper's full evaluation at a chosen scale and print the
//! paper-vs-measured report for every table and figure.
//!
//! ```text
//! cargo run --release --example paper_report            # quick scale
//! cargo run --release --example paper_report -- paper   # paper scale (hours)
//! ```
//!
//! The output of the quick-scale run is what EXPERIMENTS.md records.

use gfc_core::units::Time;
use gfc_experiments::fig09::RingParams;
use gfc_experiments::fig12::FatTreeCaseParams;
use gfc_experiments::*;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("paper") => Scale::Paper,
        _ => Scale::Quick,
    };
    println!("=== GFC paper evaluation, scale: {scale:?} ===\n");

    let t0 = std::time::Instant::now();
    println!("{}", fig05::run(fig05::Fig05Params::default()).report());
    let ring = RingParams { horizon: Time::from_millis(80), ..Default::default() };
    println!("{}", fig09::run(ring.clone()).report());
    println!("{}", fig10::run(ring).report());
    let case = FatTreeCaseParams { seed: 12, ..Default::default() };
    println!("{}", fig12::run(case.clone()).report());
    println!("{}", fig13::run(case.clone()).report());
    println!("{}", fig14::run(case).report());
    println!("{}", table1::run(table1::Table1Params::at_scale(scale)).report());
    let perf = perf::run(perf::PerfParams::at_scale(scale));
    println!("{}", perf.report_fig16());
    println!("{}", perf.report_fig17());
    println!("{}", fig18::run(fig18::Fig18Params::at_scale(scale)).report());
    println!("{}", fig19::run(fig19::Fig19Params::at_scale(scale)).report());
    println!("{}", fig20::run(fig20::Fig20Params::default()).report());
    println!("{}", ablation::run(ablation::AblationParams::default()).report());
    println!("{}", ablation::tau_sweep_report(&ablation::run_tau_sweep(4)));
    println!("=== done in {:.1} s ===", t0.elapsed().as_secs_f64());
}
