//! Render the `gfc-verify` static preflight report for a named scenario.
//!
//! ```text
//! cargo run --example preflight                      # tour of all scenarios
//! cargo run --example preflight -- ring-pfc          # one scenario, lint-style
//! cargo run --example preflight -- ring-pfc --json   # stable JSON
//! cargo run --example preflight -- ring-pfc --sarif  # SARIF 2.1.0
//! cargo run --example preflight -- corpus --sarif-dir target/sarif
//! ```
//!
//! With a scenario name the process exits non-zero when the report has
//! errors, so the analyzer can gate scripts the way a linter gates CI.
//! `corpus` runs every scenario against its expected verdict (exit 1 on
//! any mismatch) and, with `--sarif-dir`, writes one SARIF file per
//! scenario for CI artifact upload.
//!
//! Scenarios:
//!
//! * `default`        — `SimConfig::default_10g` on a 2-to-1 incast (clean);
//! * `ring-pfc`       — the Fig. 9 testbed ring under PFC (deadlock reachable);
//! * `ring-gfc`       — the same ring under buffer-based GFC (CBD but immune);
//! * `fattree`        — the Fig. 11 failed fat-tree under PFC;
//! * `sparse-ring`    — CBD-prone prefilter, exactly deadlock-free (GFC012);
//! * `fattree-updown` — failed fat-tree on complete up/down routes (clean);
//! * `ring-512`       — 1024-node ring, the susceptible case at scale;
//! * `thm41`          — a conceptual-GFC config violating Theorem 4.1.

use gfc::prelude::*;
use gfc::verify::Report;
use gfc_experiments::common::{sim_config_testbed, Scheme};
use gfc_topology::SparseRing;

fn analyze(topo: &Topology, routing: &Routing, cfg: &SimConfig) -> Report {
    gfc_sim::preflight(topo, routing, cfg)
}

/// Every corpus scenario with its expected `has_errors()` verdict — the
/// contract the CI SARIF step enforces.
const CORPUS: &[(&str, bool)] = &[
    ("default", false),
    ("ring-pfc", true),
    ("ring-cbfc", true),
    ("ring-gfc", false),
    ("ring-gfc-time", false),
    ("fattree", true),
    ("sparse-ring", false),
    ("fattree-updown", false),
    ("ring-512", true),
    ("thm41", true),
];

fn scenario(name: &str) -> Option<(String, Report)> {
    match name {
        "default" => {
            // The sound out-of-the-box configuration: derived PFC
            // thresholds on a cycle-free incast.
            let inc = Incast::new(2);
            let cfg = SimConfig::default_10g();
            let title = format!("default — {} on a 2-to-1 incast, SPF", cfg.fc.name());
            Some((title, analyze(&inc.topo, &Routing::spf(), &cfg)))
        }
        "ring-pfc" | "ring-cbfc" | "ring-gfc" | "ring-gfc-time" => {
            // The §6.1 testbed ring (Figs. 9/10): clockwise two-hop routes
            // form the Fig. 1 cyclic buffer dependency.
            let scheme = match name {
                "ring-pfc" => Scheme::Pfc,
                "ring-cbfc" => Scheme::Cbfc,
                "ring-gfc" => Scheme::GfcBuffer,
                _ => Scheme::GfcTime,
            };
            let ring = Ring::new(3);
            let routing = Routing::fixed(ring.clockwise_routes());
            let cfg = sim_config_testbed(scheme, 1);
            let title = format!("{name} — Fig. 1 ring, clockwise routes, {}", scheme.name());
            Some((title, analyze(&ring.topo, &routing, &cfg)))
        }
        "fattree" => {
            // The Fig. 11 case study: a k=4 fat-tree with three failed
            // links whose shortest-path re-routes admit a four-link CBD.
            let (ft, _) = gfc_experiments::common::fig11_scenario();
            let cfg = gfc_experiments::common::sim_config_300k(Scheme::Pfc, 1);
            let title = "fattree — Fig. 11 failed k=4 fat-tree, SPF, PFC".to_string();
            Some((title, analyze(&ft.topo, &Routing::spf(), &cfg)))
        }
        "sparse-ring" => {
            // The GFC012 showcase: hosts on alternating switches of a
            // 6-ring. The all-pairs union still cycles (GFC011 cries
            // wolf), but the host-realizable graph peels empty, so the
            // finding is downgraded to Info and PFC is admitted.
            let ring = SparseRing::new(6, 2);
            let cfg = sim_config_testbed(Scheme::Pfc, 1);
            let title = "sparse-ring — 6-ring, hosts on alternating switches, SPF, PFC".to_string();
            Some((title, analyze(&ring.topo, &Routing::spf(), &cfg)))
        }
        "fattree-updown" => {
            // A failed fat-tree whose all-pairs SPF union is CBD-prone,
            // routed entirely on up/down paths: judged on its configured
            // routes (the GFC011 fix), it is clean under PFC.
            let (ft, routes) =
                gfc_topology::fattree::find_updown_showcase(50).expect("showcase fabric");
            let cfg = gfc_experiments::common::sim_config_300k(Scheme::Pfc, 1);
            let title =
                "fattree-updown — failed k=4 fat-tree, complete up/down routes, PFC".to_string();
            Some((title, analyze(&ft.topo, &Routing::fixed(routes), &cfg)))
        }
        "ring-512" => {
            // Scale check: the iterative SCC/peel pipeline over a
            // 1024-node ring. Antipodal ECMP pairs realize the full ring
            // cycle, so PFC is (correctly) rejected here.
            let ring = Ring::new(512);
            let cfg = sim_config_testbed(Scheme::Pfc, 1);
            let title = "ring-512 — 512-switch ring, SPF, PFC".to_string();
            Some((title, analyze(&ring.topo, &Routing::spf(), &cfg)))
        }
        "thm41" => {
            // Fig. 5's impossible parameterization: with τ = 25 µs a
            // 100 KB buffer cannot satisfy B0 ≤ Bm − 4·C·τ.
            let inc = Incast::new(2);
            let mut cfg = SimConfig::default_10g();
            cfg.buffer_bytes = kb(100);
            cfg.fc =
                FcMode::Conceptual { b0: kb(50), bm: kb(100), tau: Dur::from_micros(25) }.into();
            let title = "thm41 — conceptual GFC, B0 beyond the Theorem 4.1 bound".to_string();
            Some((title, analyze(&inc.topo, &Routing::spf(), &cfg)))
        }
        _ => None,
    }
}

fn show(title: &str, report: &Report) {
    println!("== {title}");
    for line in report.render().lines() {
        println!("   {line}");
    }
    println!();
}

/// Run every corpus scenario against its expected verdict; with a
/// `--sarif-dir`, also write `<dir>/<name>.sarif` per scenario.
fn run_corpus(sarif_dir: Option<&str>) -> i32 {
    if let Some(dir) = sarif_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return 2;
        }
    }
    let mut mismatches = 0;
    for &(name, expect_errors) in CORPUS {
        let (title, report) = scenario(name).expect("corpus scenario");
        let verdict = report.verdict();
        let ok = report.has_errors() == expect_errors;
        println!(
            "{} {name:<16} {} — {verdict}",
            if ok { "PASS" } else { "FAIL" },
            if report.has_errors() { "errors " } else { "clean  " },
        );
        if !ok {
            eprintln!(
                "corpus mismatch on {name} ({title}): expected has_errors = {expect_errors}\n{}",
                report.render()
            );
            mismatches += 1;
        }
        if let Some(dir) = sarif_dir {
            let path = format!("{dir}/{name}.sarif");
            if let Err(e) = std::fs::write(&path, report.to_sarif()) {
                eprintln!("cannot write {path}: {e}");
                return 2;
            }
        }
    }
    if mismatches > 0 {
        eprintln!("{mismatches} corpus scenario(s) off their expected verdict");
        1
    } else {
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            for &(name, _) in CORPUS {
                let (title, report) = scenario(name).expect("built-in scenario");
                show(&title, &report);
            }
        }
        Some("corpus") => {
            let sarif_dir = match args.get(1).map(String::as_str) {
                Some("--sarif-dir") => match args.get(2) {
                    Some(dir) => Some(dir.as_str()),
                    None => {
                        eprintln!("--sarif-dir needs a directory");
                        std::process::exit(2);
                    }
                },
                Some(other) => {
                    eprintln!("unknown corpus flag {other:?} — try --sarif-dir DIR");
                    std::process::exit(2);
                }
                None => None,
            };
            std::process::exit(run_corpus(sarif_dir));
        }
        Some(name) => match scenario(name) {
            Some((title, report)) => {
                match args.get(1).map(String::as_str) {
                    Some("--json") => print!("{}", report.to_json()),
                    Some("--sarif") => print!("{}", report.to_sarif()),
                    Some(flag) => {
                        eprintln!("unknown flag {flag:?} — try --json or --sarif");
                        std::process::exit(2);
                    }
                    None => show(&title, &report),
                }
                if report.has_errors() {
                    std::process::exit(1);
                }
            }
            None => {
                let names: Vec<&str> = CORPUS.iter().map(|&(n, _)| n).collect();
                eprintln!("unknown scenario {name:?} — try: {}, or corpus", names.join(", "));
                std::process::exit(2);
            }
        },
    }
}
