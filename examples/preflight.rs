//! Render the `gfc-verify` static preflight report for a named scenario.
//!
//! ```text
//! cargo run --example preflight                # tour of all scenarios
//! cargo run --example preflight -- ring-pfc    # one scenario, lint-style
//! ```
//!
//! With a scenario name the process exits non-zero when the report has
//! errors, so the analyzer can gate scripts the way a linter gates CI.
//!
//! Scenarios:
//!
//! * `default`   — `SimConfig::default_10g` on a 2-to-1 incast (clean);
//! * `ring-pfc`  — the Fig. 9 testbed ring under PFC (deadlock reachable);
//! * `ring-gfc`  — the same ring under buffer-based GFC (CBD but immune);
//! * `fattree`   — the Fig. 11 failed fat-tree under PFC;
//! * `thm41`     — a conceptual-GFC config violating Theorem 4.1.

use gfc::prelude::*;
use gfc::verify::Report;
use gfc_experiments::common::{sim_config_testbed, Scheme};

fn analyze(topo: &Topology, routing: &Routing, cfg: &SimConfig) -> Report {
    gfc_sim::preflight(topo, routing, cfg)
}

fn scenario(name: &str) -> Option<(String, Report)> {
    match name {
        "default" => {
            // The sound out-of-the-box configuration: derived PFC
            // thresholds on a cycle-free incast.
            let inc = Incast::new(2);
            let cfg = SimConfig::default_10g();
            let title = format!("default — {} on a 2-to-1 incast, SPF", cfg.fc.name());
            Some((title, analyze(&inc.topo, &Routing::spf(), &cfg)))
        }
        "ring-pfc" | "ring-cbfc" | "ring-gfc" | "ring-gfc-time" => {
            // The §6.1 testbed ring (Figs. 9/10): clockwise two-hop routes
            // form the Fig. 1 cyclic buffer dependency.
            let scheme = match name {
                "ring-pfc" => Scheme::Pfc,
                "ring-cbfc" => Scheme::Cbfc,
                "ring-gfc" => Scheme::GfcBuffer,
                _ => Scheme::GfcTime,
            };
            let ring = Ring::new(3);
            let routing = Routing::fixed(ring.clockwise_routes());
            let cfg = sim_config_testbed(scheme, 1);
            let title = format!("{name} — Fig. 1 ring, clockwise routes, {}", scheme.name());
            Some((title, analyze(&ring.topo, &routing, &cfg)))
        }
        "fattree" => {
            // The Fig. 11 case study: a k=4 fat-tree with three failed
            // links whose shortest-path re-routes admit a four-link CBD.
            let (ft, _) = gfc_experiments::common::fig11_scenario();
            let cfg = gfc_experiments::common::sim_config_300k(Scheme::Pfc, 1);
            let title = "fattree — Fig. 11 failed k=4 fat-tree, SPF, PFC".to_string();
            Some((title, analyze(&ft.topo, &Routing::spf(), &cfg)))
        }
        "thm41" => {
            // Fig. 5's impossible parameterization: with τ = 25 µs a
            // 100 KB buffer cannot satisfy B0 ≤ Bm − 4·C·τ.
            let inc = Incast::new(2);
            let mut cfg = SimConfig::default_10g();
            cfg.buffer_bytes = kb(100);
            cfg.fc = FcMode::Conceptual { b0: kb(50), bm: kb(100), tau: Dur::from_micros(25) };
            let title = "thm41 — conceptual GFC, B0 beyond the Theorem 4.1 bound".to_string();
            Some((title, analyze(&inc.topo, &Routing::spf(), &cfg)))
        }
        _ => None,
    }
}

fn show(title: &str, report: &Report) {
    println!("== {title}");
    for line in report.render().lines() {
        println!("   {line}");
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            for name in ["default", "ring-pfc", "ring-gfc", "fattree", "thm41"] {
                let (title, report) = scenario(name).expect("built-in scenario");
                show(&title, &report);
            }
        }
        Some(name) => match scenario(name) {
            Some((title, report)) => {
                show(&title, &report);
                if report.has_errors() {
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!(
                    "unknown scenario {name:?} — try: default, ring-pfc, ring-cbfc, \
                     ring-gfc, ring-gfc-time, fattree, thm41"
                );
                std::process::exit(2);
            }
        },
    }
}
