//! Quickstart: the paper's Fig. 1 deadlock ring, PFC vs buffer-based GFC.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Three switches in a triangle, one host each, every host streaming to
//! the host two hops away (clockwise). The buffer dependencies form a
//! cycle; PFC's pauses freeze it into a deadlock, GFC's gentle rate
//! control keeps every flow moving at its 5 Gb/s fair share.

use gfc::prelude::*;
use gfc_sim::config::PumpPolicy;

fn run(label: &str, fc: FcMode, pump: PumpPolicy) {
    let ring = Ring::new(3);
    let mut cfg = SimConfig::default_10g();
    cfg.fc = fc.into();
    cfg.pump = pump;
    // gfc-verify statically flags PFC-on-the-clockwise-ring as deadlock
    // prone (error[GFC011]) — demonstrating exactly that is the point
    // here, so acknowledge the report instead of aborting. Run
    // `cargo run --example preflight` to see the diagnostics themselves.
    cfg.preflight = gfc_sim::PreflightPolicy::Acknowledge;
    let routing = Routing::fixed(ring.clockwise_routes());
    let mut net = Network::new(ring.topo.clone(), routing, cfg, TraceConfig::none());
    for (src, dst) in ring.clockwise_flows() {
        net.start_flow(src, dst, None, 0).expect("clockwise route");
    }
    let horizon = Time::from_millis(20);
    net.run_until(horizon);
    let snap = net.metrics_snapshot();
    println!(
        "{label:<22} deadlocked={:<5} aggregate goodput={:>6.2} Gb/s  drops={} hold-and-wait={}",
        net.structurally_deadlocked(),
        snap.goodput_bps() / 1e9,
        snap.counter(metric_names::DROPS).unwrap_or(0),
        snap.counter(metric_names::HOLD_AND_WAIT).unwrap_or(0),
    );
}

fn main() {
    println!("Fig. 1 ring, three clockwise flows, 20 ms:");
    // PFC under the classic proportional-sharing switch model (where the
    // deadlock literature lives) — wedges permanently.
    run("PFC:", FcMode::Pfc { xoff: kb(280), xon: kb(277) }, PumpPolicy::OutputQueued);
    // Buffer-based GFC with the paper's parameters — every port keeps
    // flowing; the queue parks one stage above B1 and each flow gets 5G.
    run(
        "buffer-based GFC:",
        FcMode::GfcBuffer { bm: kb(300), b1: kb(281) },
        PumpPolicy::RoundRobin,
    );
}
