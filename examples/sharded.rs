//! Sharded-engine smoke check: the parallel engine must replay the
//! *same simulation* as the sequential one, bit for bit.
//!
//! ```text
//! cargo run --release --example sharded
//! ```
//!
//! A k = 8 fat-tree (128 hosts) under cross-pod permutation traffic is
//! run three ways — on the sequential engine, and on the sharded engine
//! with the pod partition at 1 and at 4 workers — for a pause-based
//! backend (PFC) and a rate-based one (buffer-based GFC), so both
//! control-plane styles cross the domain boundaries. The process exits
//! non-zero
//! unless every sharded fingerprint (event count, full metrics
//! snapshot, flow ledger, deadlock verdicts) equals the sequential one.
//! CI runs this as the determinism gate of `gfc_sim::shard`; the full
//! backend × partition × worker matrix lives in
//! `crates/sim/tests/sharded_determinism.rs`, and the k = 16 scaling
//! curve in `cargo bench -p gfc-bench --bench sharded_scaling`.

use gfc::prelude::*;
use gfc_sim::config::PumpPolicy;
use gfc_sim::PreflightPolicy;

/// Everything observable about one finished run.
#[derive(PartialEq)]
struct Fingerprint {
    events: u64,
    metrics: Vec<gfc_telemetry::MetricEntry>,
    ledger: String,
    deadlocked: bool,
    structural: bool,
}

fn config(fc: FcMode, pump: PumpPolicy) -> SimConfig {
    let mut cfg = SimConfig::default_10g();
    cfg.fc = fc.into();
    cfg.pump = pump;
    cfg.buffer_bytes = kb(300) + 4 * 1500;
    cfg.seed = 17;
    cfg.progress_window = Dur::from_millis(2);
    // Acknowledge any preflight findings: this is a determinism gate,
    // and both engines run the same acknowledged configuration.
    cfg.preflight = PreflightPolicy::Acknowledge;
    cfg
}

/// Cross-pod permutation: host `i` streams a finite flow to the host
/// half a fabric away, so every flow crosses the core.
fn flows(ft: &FatTree) -> Vec<(gfc_topology::NodeId, gfc_topology::NodeId)> {
    let h = ft.hosts.len();
    (0..h).map(|i| (ft.hosts[i], ft.hosts[(i + h / 2) % h])).collect()
}

fn main() {
    let ft = FatTree::new(8);
    let part = Partition::by_pods(&ft);
    let horizon = Time::from_millis(1);
    let backends = [
        ("PFC", FcMode::Pfc { xoff: kb(280), xon: kb(277) }, PumpPolicy::OutputQueued),
        (
            "buffer-based GFC",
            FcMode::GfcBuffer { bm: kb(300), b1: kb(281) },
            PumpPolicy::RoundRobin,
        ),
    ];
    println!(
        "sharded smoke: k=8 fat-tree ({} nodes, {} flows, {} pod domains), {} ms horizon",
        ft.topo.num_nodes(),
        flows(&ft).len(),
        part.num_domains(),
        horizon.as_millis_f64()
    );

    for (label, fc, pump) in backends {
        let cfg = config(fc, pump);

        let mut seq =
            Network::new(ft.topo.clone(), Routing::spf(), cfg.clone(), TraceConfig::none());
        for &(s, d) in &flows(&ft) {
            seq.start_flow(s, d, Some(500_000), 0).expect("cross-pod route");
        }
        seq.run_until(horizon);
        let snap = seq.metrics_snapshot();
        let reference = Fingerprint {
            events: snap.counter(metric_names::EVENTS).unwrap_or(0),
            metrics: snap.entries,
            ledger: format!("{:?}", seq.ledger()),
            deadlocked: seq.deadlocked(),
            structural: seq.structurally_deadlocked(),
        };

        for workers in [1usize, 4] {
            let mut net =
                ShardedNetwork::new(ft.topo.clone(), Routing::spf(), cfg.clone(), &part, workers);
            for &(s, d) in &flows(&ft) {
                net.start_flow(s, d, Some(500_000), 0).expect("cross-pod route");
            }
            net.run_until(horizon);
            let snap = net.metrics_snapshot();
            let sharded = Fingerprint {
                events: snap.counter(metric_names::EVENTS).unwrap_or(0),
                metrics: snap.entries,
                ledger: format!("{:?}", net.ledger()),
                deadlocked: net.deadlocked(),
                structural: net.structurally_deadlocked(),
            };
            assert_eq!(
                sharded.events, reference.events,
                "{label} w{workers}: event count diverged from sequential"
            );
            assert!(
                sharded.metrics == reference.metrics,
                "{label} w{workers}: metrics snapshot diverged from sequential"
            );
            assert_eq!(
                sharded.ledger, reference.ledger,
                "{label} w{workers}: flow ledger diverged from sequential"
            );
            assert_eq!(
                (sharded.deadlocked, sharded.structural),
                (reference.deadlocked, reference.structural),
                "{label} w{workers}: deadlock verdicts diverged from sequential"
            );
        }
        println!(
            "  {label:<18} {:>9} events, deadlocked={:<5} — w1 and w4 fingerprints bit-identical",
            reference.events, reference.structural
        );
    }
    println!("sharded smoke passed");
}
