//! The flow-control shootout: every backend — PFC, DCFIT, CBFC, BFC and
//! both GFC modes — on the same deadlock matrix (the Fig. 1 ring and the
//! Fig. 11 fat-tree failure scenario), reporting deadlock incidence,
//! probe-flow completion and slowdown percentiles, runtime deadlock
//! detections, and feedback-bandwidth overhead.
//!
//! ```text
//! cargo run --release --example shootout
//! ```
//!
//! Writes the per-cell CSV next to the table; set `GFC_SHOOTOUT_OUT` to
//! choose the path (default `shootout.csv` under the target directory).

use gfc_experiments::common::Scheme;
use gfc_experiments::shootout::{run, ShootoutParams};

fn main() {
    let r = run(ShootoutParams::default());
    print!("{}", r.report());

    let out =
        std::env::var("GFC_SHOOTOUT_OUT").unwrap_or_else(|_| "target/shootout.csv".to_string());
    std::fs::write(&out, r.to_csv()).expect("write shootout CSV");
    println!("\n  per-cell CSV written to {out}");

    // The headline separation the matrix exists to show: the hard-gated
    // baseline wedges on both CBD scenarios while the gentle and per-flow
    // schemes finish every probe, and DCFIT's runtime detector witnesses
    // each deadlock it is susceptible to.
    for si in 0..r.matrix.num_scenarios() {
        let pfc = r.matrix.cell(si, Scheme::Pfc);
        assert!(pfc.structural_deadlock, "PFC escaped the {} CBD", r.scenarios[si]);
        let dcfit = r.matrix.cell(si, Scheme::Dcfit);
        assert!(dcfit.detections >= 1, "DCFIT missed the {} deadlock", r.scenarios[si]);
        for scheme in [Scheme::GfcBuffer, Scheme::GfcTime, Scheme::Bfc] {
            let cell = r.matrix.cell(si, scheme);
            assert!(!cell.structural_deadlock, "{} wedged", scheme.name());
            assert_eq!(
                cell.probes_finished,
                cell.probes_total,
                "{} stranded probes on {}",
                scheme.name(),
                r.scenarios[si]
            );
        }
    }
    println!("  separation checks passed: PFC wedges, GFC/BFC finish, DCFIT detects");
}
