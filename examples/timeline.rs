//! Timeline walkthrough: run the Fig. 1 ring twice — PFC (wedges) and
//! buffer-based GFC (finishes) — with the timeline layer on, then export
//! each run as a Chrome trace-event JSON file for Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`, plus the sampler
//! CSV for plotting occupancy curves.
//!
//! ```text
//! cargo run --release --example timeline
//! ```
//!
//! Writes `timeline-{pfc,gfc}.trace.json` and `timeline-{pfc,gfc}.csv`
//! to the working directory. Exits non-zero unless both traces are
//! well-formed JSON containing at least one counter track and one async
//! flow span, and the two runs' span outcomes match the schemes'
//! deadlock verdicts — so CI can use it as a smoke test.

use gfc::prelude::*;
use gfc_sim::config::PumpPolicy;
use gfc_sim::PreflightPolicy;

/// Bytes per flow: big enough that PFC wedges the ring long before any
/// flow completes (the XOFF threshold fills within ~250 µs), small
/// enough that GFC's ~5 Gb/s fair shares finish inside the horizon.
const FLOW_BYTES: u64 = 6_000_000;
const HORIZON_MS: u64 = 20;

fn ring(fc: FcMode, pump: PumpPolicy) -> Network {
    let ring = Ring::new(3);
    let mut cfg = SimConfig::default_10g();
    cfg.fc = fc.into();
    cfg.pump = pump;
    cfg.preflight = PreflightPolicy::Acknowledge; // PFC run is deliberately unsound
                                                  // Metrics, flight recorder, forensics, AND the timeline: 10 µs
                                                  // samplers on every port plus per-flow spans.
    cfg.telemetry = TelemetryConfig::full();
    let routing = Routing::fixed(ring.clockwise_routes());
    let mut net = Network::new(ring.topo.clone(), routing, cfg, TraceConfig::none());
    for (src, dst) in ring.clockwise_flows() {
        net.start_flow(src, dst, Some(FLOW_BYTES), 0).expect("clockwise route");
    }
    net
}

fn run(label: &str, fc: FcMode, pump: PumpPolicy) -> (usize, usize) {
    println!("== {label} on the Fig. 1 ring ==");
    let mut net = ring(fc, pump);
    net.run_until(Time::from_millis(HORIZON_MS));
    let horizon = Time::from_millis(HORIZON_MS).0;

    let spans = net.flow_spans().expect("spans enabled by TelemetryConfig::full()");
    let (finished, stalled) = spans.outcome_counts(horizon);
    println!("spans: {finished} finished, {stalled} stalled at end of run");
    for s in spans.spans() {
        match spans.outcome(s, horizon) {
            SpanOutcome::Finished => println!(
                "  flow {}: {} bytes in {:.2} ms ({} stall intervals)",
                s.id,
                s.delivered,
                s.fct_ps().expect("finished") as f64 / 1e9,
                s.stalls
            ),
            SpanOutcome::StalledAtEnd { idle_ps } => println!(
                "  flow {}: {} bytes delivered, idle for the last {:.2} ms",
                s.id,
                s.delivered,
                idle_ps as f64 / 1e9
            ),
        }
    }
    if let Some(p) = Percentiles::of(&spans.fcts_ps()) {
        println!("FCT percentiles (ms): {}", p.scaled(1e-9));
    }

    let samplers = net.timeline_samplers().expect("samplers enabled");
    println!(
        "samplers: {} tracks x {} samples at {:.0} us cadence ({} decimations)",
        samplers.tracks().len(),
        samplers.len(),
        samplers.period_ps() as f64 / 1e6,
        samplers.decimations()
    );

    let json = net.chrome_trace().to_json();
    let csv = net.timeline_csv().expect("samplers enabled");
    let json_path = format!("timeline-{label}.trace.json");
    let csv_path = format!("timeline-{label}.csv");
    std::fs::write(&json_path, &json).expect("write trace JSON");
    std::fs::write(&csv_path, &csv).expect("write sampler CSV");
    println!(
        "wrote {json_path} ({} KB) and {csv_path} ({} KB)",
        json.len() / 1024,
        csv.len() / 1024
    );

    // Smoke-validate the export: syntactically valid JSON with at least
    // one counter track and one async flow span.
    if let Err(e) = validate_json(&json) {
        eprintln!("{json_path}: invalid JSON: {e}");
        std::process::exit(1);
    }
    let counters = json.matches("\"ph\":\"C\"").count();
    let span_begins = json.matches("\"ph\":\"b\"").count();
    let span_ends = json.matches("\"ph\":\"e\"").count();
    if counters == 0 || span_begins == 0 {
        eprintln!("{json_path}: expected >=1 counter event and >=1 async span, got {counters} / {span_begins}");
        std::process::exit(1);
    }
    if span_begins != span_ends {
        eprintln!("{json_path}: {span_begins} span begins but {span_ends} ends");
        std::process::exit(1);
    }
    println!("trace OK: {counters} counter events, {span_begins} async spans\n");
    (finished, stalled)
}

fn main() {
    let (pfc_fin, pfc_stalled) =
        run("pfc", FcMode::Pfc { xoff: kb(280), xon: kb(277) }, PumpPolicy::OutputQueued);
    let (gfc_fin, gfc_stalled) =
        run("gfc", FcMode::GfcBuffer { bm: kb(300), b1: kb(281) }, PumpPolicy::RoundRobin);

    // The spans must tell the two schemes apart: the PFC ring wedges
    // before any 6 MB flow can complete; GFC finishes all three.
    if pfc_fin != 0 || pfc_stalled != 3 {
        eprintln!(
            "PFC run should stall all 3 flows, got {pfc_fin} finished / {pfc_stalled} stalled"
        );
        std::process::exit(1);
    }
    if gfc_fin != 3 || gfc_stalled != 0 {
        eprintln!(
            "GFC run should finish all 3 flows, got {gfc_fin} finished / {gfc_stalled} stalled"
        );
        std::process::exit(1);
    }
    println!("open the .trace.json files in https://ui.perfetto.dev to browse the runs");
}

// ---------------------------------------------------------------------
// Minimal JSON syntax checker (no external crates): validates the whole
// document is one well-formed value. Values are not interpreted.
// ---------------------------------------------------------------------

fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                string(b, i)?;
                skip_ws(b, i);
                expect(b, i, b':')?;
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {i}")),
                }
            }
        }
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, "true"),
        Some(b'f') => literal(b, i, "false"),
        Some(b'n') => literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        _ => Err(format!("unexpected byte at offset {i}")),
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    expect(b, i, b'"')?;
    while let Some(&c) = b.get(*i) {
        *i += 1;
        match c {
            b'"' => return Ok(()),
            b'\\' => {
                // Any single escaped byte; \uXXXX consumes 4 more.
                let esc = *b.get(*i).ok_or("truncated escape")?;
                *i += 1;
                if esc == b'u' {
                    for _ in 0..4 {
                        let h = *b.get(*i).ok_or("truncated \\u escape")?;
                        if !h.is_ascii_hexdigit() {
                            return Err(format!("bad \\u escape at offset {i}"));
                        }
                        *i += 1;
                    }
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at offset {i}")),
            _ => {}
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let mut digits = 0;
    while b.get(*i).is_some_and(u8::is_ascii_digit) {
        *i += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bare '-' at offset {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !b.get(*i).is_some_and(u8::is_ascii_digit) {
            return Err(format!("missing fraction digits at offset {i}"));
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !b.get(*i).is_some_and(u8::is_ascii_digit) {
            return Err(format!("missing exponent digits at offset {i}"));
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    Ok(())
}

fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {i}"))
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*i) == Some(&c) {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {i}", c as char))
    }
}
