//! # gfc — Gentle Flow Control, reproduced in Rust
//!
//! A from-scratch reproduction of *Gentle Flow Control: Avoiding Deadlock
//! in Lossless Networks* (Qian, Cheng, Zhang, Ren — SIGCOMM 2019),
//! including every substrate the paper depends on:
//!
//! * [`core`](gfc_core) — the flow-control state machines (PFC, CBFC, and
//!   the three GFC variants), wire codecs, rate limiter, and the
//!   Theorem 4.1/5.1 parameter mathematics;
//! * [`sim`](gfc_sim) — a deterministic packet-level discrete-event
//!   simulator for lossless fabrics;
//! * [`topology`](gfc_topology) — fat-trees, rings, routing, failures,
//!   and cyclic-buffer-dependency analysis;
//! * [`workload`](gfc_workload) — empirical flow-size distributions and
//!   traffic patterns;
//! * [`dcqcn`](gfc_dcqcn) — DCQCN congestion control for the interaction
//!   study;
//! * [`analysis`](gfc_analysis) — traces, statistics, and deadlock
//!   verdicts;
//! * [`telemetry`](gfc_telemetry) — the observability layer: metrics
//!   registry with JSON/CSV snapshots, flight recorder, and automatic
//!   deadlock forensics (wait-for graph + DOT);
//! * [`verify`](gfc_verify) — static preflight analysis: lint-style
//!   diagnostics (`GFC001`…) for configs, topologies, and the paper's
//!   theorem preconditions;
//! * [`experiments`](gfc_experiments) — one module per table/figure of
//!   the paper's evaluation.
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and
//! model-fidelity notes, and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! ## Quickstart
//!
//! ```
//! use gfc::prelude::*;
//!
//! // The paper's Fig. 1 scenario: three switches in a ring, clockwise
//! // two-hop flows. Under PFC this deadlocks; under buffer-based GFC the
//! // flows keep moving at their 5 Gb/s fair shares.
//! let ring = Ring::new(3);
//! let mut cfg = SimConfig::default_10g();
//! cfg.fc = FcMode::GfcBuffer { bm: kb(300), b1: kb(281) }.into();
//! let routing = Routing::fixed(ring.clockwise_routes());
//! let mut net = Network::new(ring.topo.clone(), routing, cfg, TraceConfig::none());
//! for (src, dst) in ring.clockwise_flows() {
//!     net.start_flow(src, dst, None, 0).unwrap();
//! }
//! net.run_until(Time::from_millis(5));
//! assert!(!net.structurally_deadlocked());
//! assert_eq!(net.stats().drops, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gfc_analysis as analysis;
pub use gfc_core as core;
pub use gfc_dcqcn as dcqcn;
pub use gfc_experiments as experiments;
pub use gfc_sim as sim;
pub use gfc_telemetry as telemetry;
pub use gfc_topology as topology;
pub use gfc_verify as verify;
pub use gfc_workload as workload;

/// The most common imports for driving simulations.
pub mod prelude {
    pub use gfc_core::params::LinkClass;
    pub use gfc_core::units::{kb, mb, Dur, Rate, Time};
    pub use gfc_core::{LinearMapping, RateLimiter, StageTable};
    pub use gfc_sim::{
        ClosedLoopWorkload, FcMode, FlowRequest, ListWorkload, Network, ShardedNetwork, SimConfig,
        SpanOutcome, TelemetryConfig, TimelineConfig, TraceConfig, Workload,
    };
    pub use gfc_telemetry::{names as metric_names, ChromeTrace, Percentiles, Snapshot};
    pub use gfc_topology::{FatTree, Incast, Partition, Ring, Routing, Topology};
    pub use gfc_workload::{DestPolicy, EmpiricalCdf, FlowSizeDist};
}
