/root/repo/target/debug/deps/ablation_stage_ratio-18c1427382471b5b.d: crates/bench/benches/ablation_stage_ratio.rs

/root/repo/target/debug/deps/ablation_stage_ratio-18c1427382471b5b: crates/bench/benches/ablation_stage_ratio.rs

crates/bench/benches/ablation_stage_ratio.rs:
