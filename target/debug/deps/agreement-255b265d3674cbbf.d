/root/repo/target/debug/deps/agreement-255b265d3674cbbf.d: crates/verify/tests/agreement.rs

/root/repo/target/debug/deps/agreement-255b265d3674cbbf: crates/verify/tests/agreement.rs

crates/verify/tests/agreement.rs:
