/root/repo/target/debug/deps/end_to_end-2df790c79d32705a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2df790c79d32705a: tests/end_to_end.rs

tests/end_to_end.rs:
