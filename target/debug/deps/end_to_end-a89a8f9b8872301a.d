/root/repo/target/debug/deps/end_to_end-a89a8f9b8872301a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a89a8f9b8872301a: tests/end_to_end.rs

tests/end_to_end.rs:
