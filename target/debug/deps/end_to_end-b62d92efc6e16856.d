/root/repo/target/debug/deps/end_to_end-b62d92efc6e16856.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-b62d92efc6e16856: tests/end_to_end.rs

tests/end_to_end.rs:
