/root/repo/target/debug/deps/fig05_conceptual-4e36432d479afde8.d: crates/bench/benches/fig05_conceptual.rs

/root/repo/target/debug/deps/fig05_conceptual-4e36432d479afde8: crates/bench/benches/fig05_conceptual.rs

crates/bench/benches/fig05_conceptual.rs:
