/root/repo/target/debug/deps/fig09_ring_pfc_gfc-9328c736716ff114.d: crates/bench/benches/fig09_ring_pfc_gfc.rs

/root/repo/target/debug/deps/fig09_ring_pfc_gfc-9328c736716ff114: crates/bench/benches/fig09_ring_pfc_gfc.rs

crates/bench/benches/fig09_ring_pfc_gfc.rs:
