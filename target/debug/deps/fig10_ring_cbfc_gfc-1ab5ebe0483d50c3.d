/root/repo/target/debug/deps/fig10_ring_cbfc_gfc-1ab5ebe0483d50c3.d: crates/bench/benches/fig10_ring_cbfc_gfc.rs

/root/repo/target/debug/deps/fig10_ring_cbfc_gfc-1ab5ebe0483d50c3: crates/bench/benches/fig10_ring_cbfc_gfc.rs

crates/bench/benches/fig10_ring_cbfc_gfc.rs:
