/root/repo/target/debug/deps/fig12_fattree_pfc-864f89eef99550d8.d: crates/bench/benches/fig12_fattree_pfc.rs

/root/repo/target/debug/deps/fig12_fattree_pfc-864f89eef99550d8: crates/bench/benches/fig12_fattree_pfc.rs

crates/bench/benches/fig12_fattree_pfc.rs:
