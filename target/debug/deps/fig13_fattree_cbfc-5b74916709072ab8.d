/root/repo/target/debug/deps/fig13_fattree_cbfc-5b74916709072ab8.d: crates/bench/benches/fig13_fattree_cbfc.rs

/root/repo/target/debug/deps/fig13_fattree_cbfc-5b74916709072ab8: crates/bench/benches/fig13_fattree_cbfc.rs

crates/bench/benches/fig13_fattree_cbfc.rs:
