/root/repo/target/debug/deps/fig14_victim_flow-b10cdf29cbc3f468.d: crates/bench/benches/fig14_victim_flow.rs

/root/repo/target/debug/deps/fig14_victim_flow-b10cdf29cbc3f468: crates/bench/benches/fig14_victim_flow.rs

crates/bench/benches/fig14_victim_flow.rs:
