/root/repo/target/debug/deps/fig16_bandwidth-281b565033deee62.d: crates/bench/benches/fig16_bandwidth.rs

/root/repo/target/debug/deps/fig16_bandwidth-281b565033deee62: crates/bench/benches/fig16_bandwidth.rs

crates/bench/benches/fig16_bandwidth.rs:
