/root/repo/target/debug/deps/fig17_slowdown-75de85ccde6cd927.d: crates/bench/benches/fig17_slowdown.rs

/root/repo/target/debug/deps/fig17_slowdown-75de85ccde6cd927: crates/bench/benches/fig17_slowdown.rs

crates/bench/benches/fig17_slowdown.rs:
