/root/repo/target/debug/deps/fig18_collapse-d3a1ac69a7b2864b.d: crates/bench/benches/fig18_collapse.rs

/root/repo/target/debug/deps/fig18_collapse-d3a1ac69a7b2864b: crates/bench/benches/fig18_collapse.rs

crates/bench/benches/fig18_collapse.rs:
