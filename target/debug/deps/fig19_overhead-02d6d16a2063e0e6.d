/root/repo/target/debug/deps/fig19_overhead-02d6d16a2063e0e6.d: crates/bench/benches/fig19_overhead.rs

/root/repo/target/debug/deps/fig19_overhead-02d6d16a2063e0e6: crates/bench/benches/fig19_overhead.rs

crates/bench/benches/fig19_overhead.rs:
