/root/repo/target/debug/deps/fig20_dcqcn-19f4d645955870c7.d: crates/bench/benches/fig20_dcqcn.rs

/root/repo/target/debug/deps/fig20_dcqcn-19f4d645955870c7: crates/bench/benches/fig20_dcqcn.rs

crates/bench/benches/fig20_dcqcn.rs:
