/root/repo/target/debug/deps/forensics-eee16bf26b2a4547.d: crates/sim/tests/forensics.rs

/root/repo/target/debug/deps/forensics-eee16bf26b2a4547: crates/sim/tests/forensics.rs

crates/sim/tests/forensics.rs:
