/root/repo/target/debug/deps/frame_props-29a909c46e44e71f.d: crates/core/tests/frame_props.rs

/root/repo/target/debug/deps/frame_props-29a909c46e44e71f: crates/core/tests/frame_props.rs

crates/core/tests/frame_props.rs:
