/root/repo/target/debug/deps/gfc-02f2a6e0727c0f61.d: src/lib.rs

/root/repo/target/debug/deps/libgfc-02f2a6e0727c0f61.rlib: src/lib.rs

/root/repo/target/debug/deps/libgfc-02f2a6e0727c0f61.rmeta: src/lib.rs

src/lib.rs:
