/root/repo/target/debug/deps/gfc-10afe574e9685375.d: src/lib.rs

/root/repo/target/debug/deps/gfc-10afe574e9685375: src/lib.rs

src/lib.rs:
