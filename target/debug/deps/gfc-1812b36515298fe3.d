/root/repo/target/debug/deps/gfc-1812b36515298fe3.d: src/lib.rs

/root/repo/target/debug/deps/libgfc-1812b36515298fe3.rlib: src/lib.rs

/root/repo/target/debug/deps/libgfc-1812b36515298fe3.rmeta: src/lib.rs

src/lib.rs:
