/root/repo/target/debug/deps/gfc-3a5ecd3197b36b5c.d: src/lib.rs

/root/repo/target/debug/deps/gfc-3a5ecd3197b36b5c: src/lib.rs

src/lib.rs:
