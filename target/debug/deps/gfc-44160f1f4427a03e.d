/root/repo/target/debug/deps/gfc-44160f1f4427a03e.d: src/lib.rs

/root/repo/target/debug/deps/libgfc-44160f1f4427a03e.rlib: src/lib.rs

/root/repo/target/debug/deps/libgfc-44160f1f4427a03e.rmeta: src/lib.rs

src/lib.rs:
