/root/repo/target/debug/deps/gfc-7cc2551be5422d93.d: src/lib.rs

/root/repo/target/debug/deps/libgfc-7cc2551be5422d93.rlib: src/lib.rs

/root/repo/target/debug/deps/libgfc-7cc2551be5422d93.rmeta: src/lib.rs

src/lib.rs:
