/root/repo/target/debug/deps/gfc-98c4cd4f5b5df1d6.d: src/lib.rs

/root/repo/target/debug/deps/gfc-98c4cd4f5b5df1d6: src/lib.rs

src/lib.rs:
