/root/repo/target/debug/deps/gfc-aac20e1301a5d098.d: src/lib.rs

/root/repo/target/debug/deps/libgfc-aac20e1301a5d098.rlib: src/lib.rs

/root/repo/target/debug/deps/libgfc-aac20e1301a5d098.rmeta: src/lib.rs

src/lib.rs:
