/root/repo/target/debug/deps/gfc_analysis-20b15968d671d897.d: crates/analysis/src/lib.rs crates/analysis/src/deadlock.rs crates/analysis/src/flows.rs crates/analysis/src/series.rs crates/analysis/src/stats.rs crates/analysis/src/throughput.rs

/root/repo/target/debug/deps/libgfc_analysis-20b15968d671d897.rlib: crates/analysis/src/lib.rs crates/analysis/src/deadlock.rs crates/analysis/src/flows.rs crates/analysis/src/series.rs crates/analysis/src/stats.rs crates/analysis/src/throughput.rs

/root/repo/target/debug/deps/libgfc_analysis-20b15968d671d897.rmeta: crates/analysis/src/lib.rs crates/analysis/src/deadlock.rs crates/analysis/src/flows.rs crates/analysis/src/series.rs crates/analysis/src/stats.rs crates/analysis/src/throughput.rs

crates/analysis/src/lib.rs:
crates/analysis/src/deadlock.rs:
crates/analysis/src/flows.rs:
crates/analysis/src/series.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/throughput.rs:
