/root/repo/target/debug/deps/gfc_analysis-c395e6d92cff27a6.d: crates/analysis/src/lib.rs crates/analysis/src/deadlock.rs crates/analysis/src/flows.rs crates/analysis/src/series.rs crates/analysis/src/stats.rs crates/analysis/src/throughput.rs

/root/repo/target/debug/deps/gfc_analysis-c395e6d92cff27a6: crates/analysis/src/lib.rs crates/analysis/src/deadlock.rs crates/analysis/src/flows.rs crates/analysis/src/series.rs crates/analysis/src/stats.rs crates/analysis/src/throughput.rs

crates/analysis/src/lib.rs:
crates/analysis/src/deadlock.rs:
crates/analysis/src/flows.rs:
crates/analysis/src/series.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/throughput.rs:
