/root/repo/target/debug/deps/gfc_bench-2d0ddddd072bc95a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgfc_bench-2d0ddddd072bc95a.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgfc_bench-2d0ddddd072bc95a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
