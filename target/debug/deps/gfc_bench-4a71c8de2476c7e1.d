/root/repo/target/debug/deps/gfc_bench-4a71c8de2476c7e1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gfc_bench-4a71c8de2476c7e1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
