/root/repo/target/debug/deps/gfc_bench-67119959047c42a7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgfc_bench-67119959047c42a7.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgfc_bench-67119959047c42a7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
