/root/repo/target/debug/deps/gfc_bench-a1e4c543250410f0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgfc_bench-a1e4c543250410f0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgfc_bench-a1e4c543250410f0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
