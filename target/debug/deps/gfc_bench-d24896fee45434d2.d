/root/repo/target/debug/deps/gfc_bench-d24896fee45434d2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgfc_bench-d24896fee45434d2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgfc_bench-d24896fee45434d2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
