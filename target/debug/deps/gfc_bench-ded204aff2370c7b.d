/root/repo/target/debug/deps/gfc_bench-ded204aff2370c7b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gfc_bench-ded204aff2370c7b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
