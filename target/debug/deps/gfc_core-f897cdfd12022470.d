/root/repo/target/debug/deps/gfc_core-f897cdfd12022470.d: crates/core/src/lib.rs crates/core/src/cbfc.rs crates/core/src/conceptual.rs crates/core/src/fc_mode.rs crates/core/src/frames.rs crates/core/src/gfc_buffer.rs crates/core/src/gfc_time.rs crates/core/src/mapping.rs crates/core/src/params.rs crates/core/src/pfc.rs crates/core/src/rate_limiter.rs crates/core/src/theorems.rs crates/core/src/units.rs

/root/repo/target/debug/deps/gfc_core-f897cdfd12022470: crates/core/src/lib.rs crates/core/src/cbfc.rs crates/core/src/conceptual.rs crates/core/src/fc_mode.rs crates/core/src/frames.rs crates/core/src/gfc_buffer.rs crates/core/src/gfc_time.rs crates/core/src/mapping.rs crates/core/src/params.rs crates/core/src/pfc.rs crates/core/src/rate_limiter.rs crates/core/src/theorems.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/cbfc.rs:
crates/core/src/conceptual.rs:
crates/core/src/fc_mode.rs:
crates/core/src/frames.rs:
crates/core/src/gfc_buffer.rs:
crates/core/src/gfc_time.rs:
crates/core/src/mapping.rs:
crates/core/src/params.rs:
crates/core/src/pfc.rs:
crates/core/src/rate_limiter.rs:
crates/core/src/theorems.rs:
crates/core/src/units.rs:
