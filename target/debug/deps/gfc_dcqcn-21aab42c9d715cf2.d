/root/repo/target/debug/deps/gfc_dcqcn-21aab42c9d715cf2.d: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs

/root/repo/target/debug/deps/gfc_dcqcn-21aab42c9d715cf2: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs

crates/dcqcn/src/lib.rs:
crates/dcqcn/src/cp.rs:
crates/dcqcn/src/np.rs:
crates/dcqcn/src/rp.rs:
