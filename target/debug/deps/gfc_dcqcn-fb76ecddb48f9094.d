/root/repo/target/debug/deps/gfc_dcqcn-fb76ecddb48f9094.d: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs

/root/repo/target/debug/deps/libgfc_dcqcn-fb76ecddb48f9094.rlib: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs

/root/repo/target/debug/deps/libgfc_dcqcn-fb76ecddb48f9094.rmeta: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs

crates/dcqcn/src/lib.rs:
crates/dcqcn/src/cp.rs:
crates/dcqcn/src/np.rs:
crates/dcqcn/src/rp.rs:
