/root/repo/target/debug/deps/gfc_experiments-95e7568583f47371.d: crates/experiments/src/lib.rs crates/experiments/src/ablation.rs crates/experiments/src/common.rs crates/experiments/src/fig05.rs crates/experiments/src/fig09.rs crates/experiments/src/fig10.rs crates/experiments/src/fig12.rs crates/experiments/src/fig13.rs crates/experiments/src/fig14.rs crates/experiments/src/fig18.rs crates/experiments/src/fig19.rs crates/experiments/src/fig20.rs crates/experiments/src/perf.rs crates/experiments/src/table1.rs

/root/repo/target/debug/deps/libgfc_experiments-95e7568583f47371.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablation.rs crates/experiments/src/common.rs crates/experiments/src/fig05.rs crates/experiments/src/fig09.rs crates/experiments/src/fig10.rs crates/experiments/src/fig12.rs crates/experiments/src/fig13.rs crates/experiments/src/fig14.rs crates/experiments/src/fig18.rs crates/experiments/src/fig19.rs crates/experiments/src/fig20.rs crates/experiments/src/perf.rs crates/experiments/src/table1.rs

/root/repo/target/debug/deps/libgfc_experiments-95e7568583f47371.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablation.rs crates/experiments/src/common.rs crates/experiments/src/fig05.rs crates/experiments/src/fig09.rs crates/experiments/src/fig10.rs crates/experiments/src/fig12.rs crates/experiments/src/fig13.rs crates/experiments/src/fig14.rs crates/experiments/src/fig18.rs crates/experiments/src/fig19.rs crates/experiments/src/fig20.rs crates/experiments/src/perf.rs crates/experiments/src/table1.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablation.rs:
crates/experiments/src/common.rs:
crates/experiments/src/fig05.rs:
crates/experiments/src/fig09.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig12.rs:
crates/experiments/src/fig13.rs:
crates/experiments/src/fig14.rs:
crates/experiments/src/fig18.rs:
crates/experiments/src/fig19.rs:
crates/experiments/src/fig20.rs:
crates/experiments/src/perf.rs:
crates/experiments/src/table1.rs:
