/root/repo/target/debug/deps/gfc_sim-a1ccf2d9faafff89.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fc.rs crates/sim/src/flowgen.rs crates/sim/src/network.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/telemetry.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/gfc_sim-a1ccf2d9faafff89: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fc.rs crates/sim/src/flowgen.rs crates/sim/src/network.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/telemetry.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/event.rs:
crates/sim/src/fc.rs:
crates/sim/src/flowgen.rs:
crates/sim/src/network.rs:
crates/sim/src/packet.rs:
crates/sim/src/port.rs:
crates/sim/src/telemetry.rs:
crates/sim/src/trace.rs:
