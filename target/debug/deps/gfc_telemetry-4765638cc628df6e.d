/root/repo/target/debug/deps/gfc_telemetry-4765638cc628df6e.d: crates/telemetry/src/lib.rs crates/telemetry/src/forensics.rs crates/telemetry/src/recorder.rs crates/telemetry/src/registry.rs

/root/repo/target/debug/deps/gfc_telemetry-4765638cc628df6e: crates/telemetry/src/lib.rs crates/telemetry/src/forensics.rs crates/telemetry/src/recorder.rs crates/telemetry/src/registry.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/forensics.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/registry.rs:
