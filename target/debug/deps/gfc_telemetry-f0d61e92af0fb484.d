/root/repo/target/debug/deps/gfc_telemetry-f0d61e92af0fb484.d: crates/telemetry/src/lib.rs crates/telemetry/src/forensics.rs crates/telemetry/src/recorder.rs crates/telemetry/src/registry.rs

/root/repo/target/debug/deps/libgfc_telemetry-f0d61e92af0fb484.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/forensics.rs crates/telemetry/src/recorder.rs crates/telemetry/src/registry.rs

/root/repo/target/debug/deps/libgfc_telemetry-f0d61e92af0fb484.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/forensics.rs crates/telemetry/src/recorder.rs crates/telemetry/src/registry.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/forensics.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/registry.rs:
