/root/repo/target/debug/deps/gfc_topology-51fa3eef9b048143.d: crates/topology/src/lib.rs crates/topology/src/cbd.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/routing.rs crates/topology/src/scenarios.rs

/root/repo/target/debug/deps/libgfc_topology-51fa3eef9b048143.rlib: crates/topology/src/lib.rs crates/topology/src/cbd.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/routing.rs crates/topology/src/scenarios.rs

/root/repo/target/debug/deps/libgfc_topology-51fa3eef9b048143.rmeta: crates/topology/src/lib.rs crates/topology/src/cbd.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/routing.rs crates/topology/src/scenarios.rs

crates/topology/src/lib.rs:
crates/topology/src/cbd.rs:
crates/topology/src/fattree.rs:
crates/topology/src/graph.rs:
crates/topology/src/routing.rs:
crates/topology/src/scenarios.rs:
