/root/repo/target/debug/deps/gfc_topology-90e228bf8845d3de.d: crates/topology/src/lib.rs crates/topology/src/cbd.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/routing.rs crates/topology/src/scenarios.rs

/root/repo/target/debug/deps/gfc_topology-90e228bf8845d3de: crates/topology/src/lib.rs crates/topology/src/cbd.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/routing.rs crates/topology/src/scenarios.rs

crates/topology/src/lib.rs:
crates/topology/src/cbd.rs:
crates/topology/src/fattree.rs:
crates/topology/src/graph.rs:
crates/topology/src/routing.rs:
crates/topology/src/scenarios.rs:
