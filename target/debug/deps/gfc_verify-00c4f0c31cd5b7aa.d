/root/repo/target/debug/deps/gfc_verify-00c4f0c31cd5b7aa.d: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs

/root/repo/target/debug/deps/libgfc_verify-00c4f0c31cd5b7aa.rlib: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs

/root/repo/target/debug/deps/libgfc_verify-00c4f0c31cd5b7aa.rmeta: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs

crates/verify/src/lib.rs:
crates/verify/src/checks.rs:
crates/verify/src/diag.rs:
crates/verify/src/spec.rs:
