/root/repo/target/debug/deps/gfc_verify-0afa538581081417.d: crates/verify/src/lib.rs

/root/repo/target/debug/deps/libgfc_verify-0afa538581081417.rlib: crates/verify/src/lib.rs

/root/repo/target/debug/deps/libgfc_verify-0afa538581081417.rmeta: crates/verify/src/lib.rs

crates/verify/src/lib.rs:
