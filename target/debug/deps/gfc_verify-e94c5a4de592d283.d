/root/repo/target/debug/deps/gfc_verify-e94c5a4de592d283.d: crates/verify/src/lib.rs

/root/repo/target/debug/deps/gfc_verify-e94c5a4de592d283: crates/verify/src/lib.rs

crates/verify/src/lib.rs:
