/root/repo/target/debug/deps/gfc_verify-ea85f5fcd595ea9a.d: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs

/root/repo/target/debug/deps/gfc_verify-ea85f5fcd595ea9a: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs

crates/verify/src/lib.rs:
crates/verify/src/checks.rs:
crates/verify/src/diag.rs:
crates/verify/src/spec.rs:
