/root/repo/target/debug/deps/gfc_workload-1bf8faca32ee5010.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs

/root/repo/target/debug/deps/gfc_workload-1bf8faca32ee5010: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/patterns.rs:
