/root/repo/target/debug/deps/gfc_workload-ac0aad39b6fc2870.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs

/root/repo/target/debug/deps/libgfc_workload-ac0aad39b6fc2870.rlib: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs

/root/repo/target/debug/deps/libgfc_workload-ac0aad39b6fc2870.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/patterns.rs:
