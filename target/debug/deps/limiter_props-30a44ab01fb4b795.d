/root/repo/target/debug/deps/limiter_props-30a44ab01fb4b795.d: crates/core/tests/limiter_props.rs

/root/repo/target/debug/deps/limiter_props-30a44ab01fb4b795: crates/core/tests/limiter_props.rs

crates/core/tests/limiter_props.rs:
