/root/repo/target/debug/deps/proptest-25eb43389c6a971d.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-25eb43389c6a971d.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-25eb43389c6a971d.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/array.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/test_runner.rs:
