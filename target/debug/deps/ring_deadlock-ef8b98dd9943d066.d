/root/repo/target/debug/deps/ring_deadlock-ef8b98dd9943d066.d: crates/sim/tests/ring_deadlock.rs

/root/repo/target/debug/deps/ring_deadlock-ef8b98dd9943d066: crates/sim/tests/ring_deadlock.rs

crates/sim/tests/ring_deadlock.rs:
