/root/repo/target/debug/deps/ring_deadlock-fc1abb0e1cc5f492.d: crates/sim/tests/ring_deadlock.rs

/root/repo/target/debug/deps/ring_deadlock-fc1abb0e1cc5f492: crates/sim/tests/ring_deadlock.rs

crates/sim/tests/ring_deadlock.rs:
