/root/repo/target/debug/deps/routing_props-b883a37f404e646b.d: crates/topology/tests/routing_props.rs

/root/repo/target/debug/deps/routing_props-b883a37f404e646b: crates/topology/tests/routing_props.rs

crates/topology/tests/routing_props.rs:
