/root/repo/target/debug/deps/sim_props-702d7c897554d29b.d: crates/sim/tests/sim_props.rs

/root/repo/target/debug/deps/sim_props-702d7c897554d29b: crates/sim/tests/sim_props.rs

crates/sim/tests/sim_props.rs:
