/root/repo/target/debug/deps/sim_props-a3233ac224d782f3.d: crates/sim/tests/sim_props.rs

/root/repo/target/debug/deps/sim_props-a3233ac224d782f3: crates/sim/tests/sim_props.rs

crates/sim/tests/sim_props.rs:
