/root/repo/target/debug/deps/table1_deadlock_census-de53405f0c87e87b.d: crates/bench/benches/table1_deadlock_census.rs

/root/repo/target/debug/deps/table1_deadlock_census-de53405f0c87e87b: crates/bench/benches/table1_deadlock_census.rs

crates/bench/benches/table1_deadlock_census.rs:
