/root/repo/target/debug/deps/theorem_props-4cd7bd36d07e03ab.d: tests/theorem_props.rs

/root/repo/target/debug/deps/theorem_props-4cd7bd36d07e03ab: tests/theorem_props.rs

tests/theorem_props.rs:
