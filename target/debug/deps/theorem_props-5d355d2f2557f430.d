/root/repo/target/debug/deps/theorem_props-5d355d2f2557f430.d: tests/theorem_props.rs

/root/repo/target/debug/deps/theorem_props-5d355d2f2557f430: tests/theorem_props.rs

tests/theorem_props.rs:
