/root/repo/target/debug/deps/theorem_props-bc2caeffb9144d51.d: tests/theorem_props.rs

/root/repo/target/debug/deps/theorem_props-bc2caeffb9144d51: tests/theorem_props.rs

tests/theorem_props.rs:
