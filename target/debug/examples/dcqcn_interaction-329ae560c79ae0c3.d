/root/repo/target/debug/examples/dcqcn_interaction-329ae560c79ae0c3.d: examples/dcqcn_interaction.rs

/root/repo/target/debug/examples/dcqcn_interaction-329ae560c79ae0c3: examples/dcqcn_interaction.rs

examples/dcqcn_interaction.rs:
