/root/repo/target/debug/examples/dcqcn_interaction-a2aa9a424e6519a3.d: examples/dcqcn_interaction.rs

/root/repo/target/debug/examples/dcqcn_interaction-a2aa9a424e6519a3: examples/dcqcn_interaction.rs

examples/dcqcn_interaction.rs:
