/root/repo/target/debug/examples/dcqcn_interaction-d5e875138f867e1e.d: examples/dcqcn_interaction.rs

/root/repo/target/debug/examples/dcqcn_interaction-d5e875138f867e1e: examples/dcqcn_interaction.rs

examples/dcqcn_interaction.rs:
