/root/repo/target/debug/examples/deadlock_ring-478ad39c8215543a.d: examples/deadlock_ring.rs

/root/repo/target/debug/examples/deadlock_ring-478ad39c8215543a: examples/deadlock_ring.rs

examples/deadlock_ring.rs:
