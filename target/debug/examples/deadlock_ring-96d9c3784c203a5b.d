/root/repo/target/debug/examples/deadlock_ring-96d9c3784c203a5b.d: examples/deadlock_ring.rs

/root/repo/target/debug/examples/deadlock_ring-96d9c3784c203a5b: examples/deadlock_ring.rs

examples/deadlock_ring.rs:
