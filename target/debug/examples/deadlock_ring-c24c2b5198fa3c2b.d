/root/repo/target/debug/examples/deadlock_ring-c24c2b5198fa3c2b.d: examples/deadlock_ring.rs

/root/repo/target/debug/examples/deadlock_ring-c24c2b5198fa3c2b: examples/deadlock_ring.rs

examples/deadlock_ring.rs:
