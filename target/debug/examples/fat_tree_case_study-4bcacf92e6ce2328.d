/root/repo/target/debug/examples/fat_tree_case_study-4bcacf92e6ce2328.d: examples/fat_tree_case_study.rs

/root/repo/target/debug/examples/fat_tree_case_study-4bcacf92e6ce2328: examples/fat_tree_case_study.rs

examples/fat_tree_case_study.rs:
