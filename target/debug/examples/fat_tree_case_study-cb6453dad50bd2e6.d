/root/repo/target/debug/examples/fat_tree_case_study-cb6453dad50bd2e6.d: examples/fat_tree_case_study.rs

/root/repo/target/debug/examples/fat_tree_case_study-cb6453dad50bd2e6: examples/fat_tree_case_study.rs

examples/fat_tree_case_study.rs:
