/root/repo/target/debug/examples/fat_tree_case_study-ecca15bf20b56b56.d: examples/fat_tree_case_study.rs

/root/repo/target/debug/examples/fat_tree_case_study-ecca15bf20b56b56: examples/fat_tree_case_study.rs

examples/fat_tree_case_study.rs:
