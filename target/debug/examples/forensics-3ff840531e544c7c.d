/root/repo/target/debug/examples/forensics-3ff840531e544c7c.d: examples/forensics.rs

/root/repo/target/debug/examples/forensics-3ff840531e544c7c: examples/forensics.rs

examples/forensics.rs:
