/root/repo/target/debug/examples/paper_report-178a2c3b9c846fe7.d: examples/paper_report.rs

/root/repo/target/debug/examples/paper_report-178a2c3b9c846fe7: examples/paper_report.rs

examples/paper_report.rs:
