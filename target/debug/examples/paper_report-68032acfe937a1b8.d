/root/repo/target/debug/examples/paper_report-68032acfe937a1b8.d: examples/paper_report.rs

/root/repo/target/debug/examples/paper_report-68032acfe937a1b8: examples/paper_report.rs

examples/paper_report.rs:
