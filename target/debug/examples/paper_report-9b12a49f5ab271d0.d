/root/repo/target/debug/examples/paper_report-9b12a49f5ab271d0.d: examples/paper_report.rs

/root/repo/target/debug/examples/paper_report-9b12a49f5ab271d0: examples/paper_report.rs

examples/paper_report.rs:
