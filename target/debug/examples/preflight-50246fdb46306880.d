/root/repo/target/debug/examples/preflight-50246fdb46306880.d: examples/preflight.rs

/root/repo/target/debug/examples/preflight-50246fdb46306880: examples/preflight.rs

examples/preflight.rs:
