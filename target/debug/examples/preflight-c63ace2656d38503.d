/root/repo/target/debug/examples/preflight-c63ace2656d38503.d: examples/preflight.rs

/root/repo/target/debug/examples/preflight-c63ace2656d38503: examples/preflight.rs

examples/preflight.rs:
