/root/repo/target/debug/examples/quickstart-671177fa5920dac5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-671177fa5920dac5: examples/quickstart.rs

examples/quickstart.rs:
