/root/repo/target/debug/examples/quickstart-ce49440f702b3a9c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ce49440f702b3a9c: examples/quickstart.rs

examples/quickstart.rs:
