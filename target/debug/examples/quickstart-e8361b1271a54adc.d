/root/repo/target/debug/examples/quickstart-e8361b1271a54adc.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e8361b1271a54adc: examples/quickstart.rs

examples/quickstart.rs:
