/root/repo/target/release/deps/ablation_stage_ratio-6f93f586ee9abb74.d: crates/bench/benches/ablation_stage_ratio.rs

/root/repo/target/release/deps/ablation_stage_ratio-6f93f586ee9abb74: crates/bench/benches/ablation_stage_ratio.rs

crates/bench/benches/ablation_stage_ratio.rs:
