/root/repo/target/release/deps/ablation_stage_ratio-b08aec91c9929d49.d: crates/bench/benches/ablation_stage_ratio.rs Cargo.toml

/root/repo/target/release/deps/libablation_stage_ratio-b08aec91c9929d49.rmeta: crates/bench/benches/ablation_stage_ratio.rs Cargo.toml

crates/bench/benches/ablation_stage_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
