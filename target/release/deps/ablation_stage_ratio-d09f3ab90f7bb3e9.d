/root/repo/target/release/deps/ablation_stage_ratio-d09f3ab90f7bb3e9.d: crates/bench/benches/ablation_stage_ratio.rs Cargo.toml

/root/repo/target/release/deps/libablation_stage_ratio-d09f3ab90f7bb3e9.rmeta: crates/bench/benches/ablation_stage_ratio.rs Cargo.toml

crates/bench/benches/ablation_stage_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
