/root/repo/target/release/deps/agreement-24f19f6fee56b2c1.d: crates/verify/tests/agreement.rs Cargo.toml

/root/repo/target/release/deps/libagreement-24f19f6fee56b2c1.rmeta: crates/verify/tests/agreement.rs Cargo.toml

crates/verify/tests/agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
