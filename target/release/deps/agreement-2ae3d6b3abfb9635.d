/root/repo/target/release/deps/agreement-2ae3d6b3abfb9635.d: crates/verify/tests/agreement.rs

/root/repo/target/release/deps/agreement-2ae3d6b3abfb9635: crates/verify/tests/agreement.rs

crates/verify/tests/agreement.rs:
