/root/repo/target/release/deps/agreement-437e57b1ee4416dd.d: crates/verify/tests/agreement.rs

/root/repo/target/release/deps/agreement-437e57b1ee4416dd: crates/verify/tests/agreement.rs

crates/verify/tests/agreement.rs:
