/root/repo/target/release/deps/agreement-a3763e5648d5763c.d: crates/verify/tests/agreement.rs

/root/repo/target/release/deps/agreement-a3763e5648d5763c: crates/verify/tests/agreement.rs

crates/verify/tests/agreement.rs:
