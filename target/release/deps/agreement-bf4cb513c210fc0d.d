/root/repo/target/release/deps/agreement-bf4cb513c210fc0d.d: crates/verify/tests/agreement.rs Cargo.toml

/root/repo/target/release/deps/libagreement-bf4cb513c210fc0d.rmeta: crates/verify/tests/agreement.rs Cargo.toml

crates/verify/tests/agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
