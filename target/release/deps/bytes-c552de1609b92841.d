/root/repo/target/release/deps/bytes-c552de1609b92841.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-c552de1609b92841.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
