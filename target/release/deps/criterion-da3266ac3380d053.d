/root/repo/target/release/deps/criterion-da3266ac3380d053.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-da3266ac3380d053.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
