/root/repo/target/release/deps/end_to_end-4ab59f4f106cc16f.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-4ab59f4f106cc16f: tests/end_to_end.rs

tests/end_to_end.rs:
