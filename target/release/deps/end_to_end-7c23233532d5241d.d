/root/repo/target/release/deps/end_to_end-7c23233532d5241d.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-7c23233532d5241d: tests/end_to_end.rs

tests/end_to_end.rs:
