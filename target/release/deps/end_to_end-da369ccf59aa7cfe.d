/root/repo/target/release/deps/end_to_end-da369ccf59aa7cfe.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-da369ccf59aa7cfe: tests/end_to_end.rs

tests/end_to_end.rs:
