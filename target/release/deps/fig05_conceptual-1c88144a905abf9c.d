/root/repo/target/release/deps/fig05_conceptual-1c88144a905abf9c.d: crates/bench/benches/fig05_conceptual.rs Cargo.toml

/root/repo/target/release/deps/libfig05_conceptual-1c88144a905abf9c.rmeta: crates/bench/benches/fig05_conceptual.rs Cargo.toml

crates/bench/benches/fig05_conceptual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
