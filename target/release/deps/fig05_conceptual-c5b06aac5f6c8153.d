/root/repo/target/release/deps/fig05_conceptual-c5b06aac5f6c8153.d: crates/bench/benches/fig05_conceptual.rs

/root/repo/target/release/deps/fig05_conceptual-c5b06aac5f6c8153: crates/bench/benches/fig05_conceptual.rs

crates/bench/benches/fig05_conceptual.rs:
