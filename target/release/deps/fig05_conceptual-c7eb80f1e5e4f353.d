/root/repo/target/release/deps/fig05_conceptual-c7eb80f1e5e4f353.d: crates/bench/benches/fig05_conceptual.rs Cargo.toml

/root/repo/target/release/deps/libfig05_conceptual-c7eb80f1e5e4f353.rmeta: crates/bench/benches/fig05_conceptual.rs Cargo.toml

crates/bench/benches/fig05_conceptual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
