/root/repo/target/release/deps/fig09_ring_pfc_gfc-91fa07278b6dc67b.d: crates/bench/benches/fig09_ring_pfc_gfc.rs Cargo.toml

/root/repo/target/release/deps/libfig09_ring_pfc_gfc-91fa07278b6dc67b.rmeta: crates/bench/benches/fig09_ring_pfc_gfc.rs Cargo.toml

crates/bench/benches/fig09_ring_pfc_gfc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
