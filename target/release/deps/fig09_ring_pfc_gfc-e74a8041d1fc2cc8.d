/root/repo/target/release/deps/fig09_ring_pfc_gfc-e74a8041d1fc2cc8.d: crates/bench/benches/fig09_ring_pfc_gfc.rs

/root/repo/target/release/deps/fig09_ring_pfc_gfc-e74a8041d1fc2cc8: crates/bench/benches/fig09_ring_pfc_gfc.rs

crates/bench/benches/fig09_ring_pfc_gfc.rs:
