/root/repo/target/release/deps/fig10_ring_cbfc_gfc-4d327e1082f7c7f2.d: crates/bench/benches/fig10_ring_cbfc_gfc.rs Cargo.toml

/root/repo/target/release/deps/libfig10_ring_cbfc_gfc-4d327e1082f7c7f2.rmeta: crates/bench/benches/fig10_ring_cbfc_gfc.rs Cargo.toml

crates/bench/benches/fig10_ring_cbfc_gfc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
