/root/repo/target/release/deps/fig10_ring_cbfc_gfc-ab22c312ee7f1341.d: crates/bench/benches/fig10_ring_cbfc_gfc.rs

/root/repo/target/release/deps/fig10_ring_cbfc_gfc-ab22c312ee7f1341: crates/bench/benches/fig10_ring_cbfc_gfc.rs

crates/bench/benches/fig10_ring_cbfc_gfc.rs:
