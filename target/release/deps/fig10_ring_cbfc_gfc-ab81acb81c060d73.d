/root/repo/target/release/deps/fig10_ring_cbfc_gfc-ab81acb81c060d73.d: crates/bench/benches/fig10_ring_cbfc_gfc.rs Cargo.toml

/root/repo/target/release/deps/libfig10_ring_cbfc_gfc-ab81acb81c060d73.rmeta: crates/bench/benches/fig10_ring_cbfc_gfc.rs Cargo.toml

crates/bench/benches/fig10_ring_cbfc_gfc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
