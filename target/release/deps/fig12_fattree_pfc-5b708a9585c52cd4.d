/root/repo/target/release/deps/fig12_fattree_pfc-5b708a9585c52cd4.d: crates/bench/benches/fig12_fattree_pfc.rs Cargo.toml

/root/repo/target/release/deps/libfig12_fattree_pfc-5b708a9585c52cd4.rmeta: crates/bench/benches/fig12_fattree_pfc.rs Cargo.toml

crates/bench/benches/fig12_fattree_pfc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
