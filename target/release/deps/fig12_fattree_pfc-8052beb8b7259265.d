/root/repo/target/release/deps/fig12_fattree_pfc-8052beb8b7259265.d: crates/bench/benches/fig12_fattree_pfc.rs

/root/repo/target/release/deps/fig12_fattree_pfc-8052beb8b7259265: crates/bench/benches/fig12_fattree_pfc.rs

crates/bench/benches/fig12_fattree_pfc.rs:
