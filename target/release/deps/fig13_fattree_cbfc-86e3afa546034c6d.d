/root/repo/target/release/deps/fig13_fattree_cbfc-86e3afa546034c6d.d: crates/bench/benches/fig13_fattree_cbfc.rs

/root/repo/target/release/deps/fig13_fattree_cbfc-86e3afa546034c6d: crates/bench/benches/fig13_fattree_cbfc.rs

crates/bench/benches/fig13_fattree_cbfc.rs:
