/root/repo/target/release/deps/fig13_fattree_cbfc-ab7fefa7b87302b0.d: crates/bench/benches/fig13_fattree_cbfc.rs Cargo.toml

/root/repo/target/release/deps/libfig13_fattree_cbfc-ab7fefa7b87302b0.rmeta: crates/bench/benches/fig13_fattree_cbfc.rs Cargo.toml

crates/bench/benches/fig13_fattree_cbfc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
