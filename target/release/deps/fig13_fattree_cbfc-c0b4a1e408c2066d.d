/root/repo/target/release/deps/fig13_fattree_cbfc-c0b4a1e408c2066d.d: crates/bench/benches/fig13_fattree_cbfc.rs Cargo.toml

/root/repo/target/release/deps/libfig13_fattree_cbfc-c0b4a1e408c2066d.rmeta: crates/bench/benches/fig13_fattree_cbfc.rs Cargo.toml

crates/bench/benches/fig13_fattree_cbfc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
