/root/repo/target/release/deps/fig14_victim_flow-6aeb30f5ccc9f596.d: crates/bench/benches/fig14_victim_flow.rs Cargo.toml

/root/repo/target/release/deps/libfig14_victim_flow-6aeb30f5ccc9f596.rmeta: crates/bench/benches/fig14_victim_flow.rs Cargo.toml

crates/bench/benches/fig14_victim_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
