/root/repo/target/release/deps/fig14_victim_flow-c874d07bf637c8c1.d: crates/bench/benches/fig14_victim_flow.rs

/root/repo/target/release/deps/fig14_victim_flow-c874d07bf637c8c1: crates/bench/benches/fig14_victim_flow.rs

crates/bench/benches/fig14_victim_flow.rs:
