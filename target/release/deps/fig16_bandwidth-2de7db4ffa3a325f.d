/root/repo/target/release/deps/fig16_bandwidth-2de7db4ffa3a325f.d: crates/bench/benches/fig16_bandwidth.rs

/root/repo/target/release/deps/fig16_bandwidth-2de7db4ffa3a325f: crates/bench/benches/fig16_bandwidth.rs

crates/bench/benches/fig16_bandwidth.rs:
