/root/repo/target/release/deps/fig16_bandwidth-85921499c5736072.d: crates/bench/benches/fig16_bandwidth.rs Cargo.toml

/root/repo/target/release/deps/libfig16_bandwidth-85921499c5736072.rmeta: crates/bench/benches/fig16_bandwidth.rs Cargo.toml

crates/bench/benches/fig16_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
