/root/repo/target/release/deps/fig17_slowdown-5f4603360329ef64.d: crates/bench/benches/fig17_slowdown.rs Cargo.toml

/root/repo/target/release/deps/libfig17_slowdown-5f4603360329ef64.rmeta: crates/bench/benches/fig17_slowdown.rs Cargo.toml

crates/bench/benches/fig17_slowdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
