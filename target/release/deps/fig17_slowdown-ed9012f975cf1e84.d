/root/repo/target/release/deps/fig17_slowdown-ed9012f975cf1e84.d: crates/bench/benches/fig17_slowdown.rs

/root/repo/target/release/deps/fig17_slowdown-ed9012f975cf1e84: crates/bench/benches/fig17_slowdown.rs

crates/bench/benches/fig17_slowdown.rs:
