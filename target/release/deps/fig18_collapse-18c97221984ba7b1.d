/root/repo/target/release/deps/fig18_collapse-18c97221984ba7b1.d: crates/bench/benches/fig18_collapse.rs

/root/repo/target/release/deps/fig18_collapse-18c97221984ba7b1: crates/bench/benches/fig18_collapse.rs

crates/bench/benches/fig18_collapse.rs:
