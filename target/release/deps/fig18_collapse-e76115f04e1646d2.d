/root/repo/target/release/deps/fig18_collapse-e76115f04e1646d2.d: crates/bench/benches/fig18_collapse.rs Cargo.toml

/root/repo/target/release/deps/libfig18_collapse-e76115f04e1646d2.rmeta: crates/bench/benches/fig18_collapse.rs Cargo.toml

crates/bench/benches/fig18_collapse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
