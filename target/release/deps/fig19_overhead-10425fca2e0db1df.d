/root/repo/target/release/deps/fig19_overhead-10425fca2e0db1df.d: crates/bench/benches/fig19_overhead.rs Cargo.toml

/root/repo/target/release/deps/libfig19_overhead-10425fca2e0db1df.rmeta: crates/bench/benches/fig19_overhead.rs Cargo.toml

crates/bench/benches/fig19_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
