/root/repo/target/release/deps/fig19_overhead-a1181275b6da51b6.d: crates/bench/benches/fig19_overhead.rs

/root/repo/target/release/deps/fig19_overhead-a1181275b6da51b6: crates/bench/benches/fig19_overhead.rs

crates/bench/benches/fig19_overhead.rs:
