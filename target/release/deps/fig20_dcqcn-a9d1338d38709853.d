/root/repo/target/release/deps/fig20_dcqcn-a9d1338d38709853.d: crates/bench/benches/fig20_dcqcn.rs Cargo.toml

/root/repo/target/release/deps/libfig20_dcqcn-a9d1338d38709853.rmeta: crates/bench/benches/fig20_dcqcn.rs Cargo.toml

crates/bench/benches/fig20_dcqcn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
