/root/repo/target/release/deps/fig20_dcqcn-e45ffebd9380b0e2.d: crates/bench/benches/fig20_dcqcn.rs

/root/repo/target/release/deps/fig20_dcqcn-e45ffebd9380b0e2: crates/bench/benches/fig20_dcqcn.rs

crates/bench/benches/fig20_dcqcn.rs:
