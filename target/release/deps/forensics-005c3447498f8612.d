/root/repo/target/release/deps/forensics-005c3447498f8612.d: crates/sim/tests/forensics.rs

/root/repo/target/release/deps/forensics-005c3447498f8612: crates/sim/tests/forensics.rs

crates/sim/tests/forensics.rs:
