/root/repo/target/release/deps/forensics-f182233680f0eb09.d: crates/sim/tests/forensics.rs Cargo.toml

/root/repo/target/release/deps/libforensics-f182233680f0eb09.rmeta: crates/sim/tests/forensics.rs Cargo.toml

crates/sim/tests/forensics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
