/root/repo/target/release/deps/frame_props-4ec445eed7ba4797.d: crates/core/tests/frame_props.rs Cargo.toml

/root/repo/target/release/deps/libframe_props-4ec445eed7ba4797.rmeta: crates/core/tests/frame_props.rs Cargo.toml

crates/core/tests/frame_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
