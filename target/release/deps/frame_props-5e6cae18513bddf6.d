/root/repo/target/release/deps/frame_props-5e6cae18513bddf6.d: crates/core/tests/frame_props.rs

/root/repo/target/release/deps/frame_props-5e6cae18513bddf6: crates/core/tests/frame_props.rs

crates/core/tests/frame_props.rs:
