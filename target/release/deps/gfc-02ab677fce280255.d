/root/repo/target/release/deps/gfc-02ab677fce280255.d: src/lib.rs

/root/repo/target/release/deps/libgfc-02ab677fce280255.rlib: src/lib.rs

/root/repo/target/release/deps/libgfc-02ab677fce280255.rmeta: src/lib.rs

src/lib.rs:
