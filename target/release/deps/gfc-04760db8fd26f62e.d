/root/repo/target/release/deps/gfc-04760db8fd26f62e.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libgfc-04760db8fd26f62e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
