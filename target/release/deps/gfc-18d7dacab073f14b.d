/root/repo/target/release/deps/gfc-18d7dacab073f14b.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libgfc-18d7dacab073f14b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
