/root/repo/target/release/deps/gfc-3806cb85b48d9730.d: src/lib.rs

/root/repo/target/release/deps/libgfc-3806cb85b48d9730.rlib: src/lib.rs

/root/repo/target/release/deps/libgfc-3806cb85b48d9730.rmeta: src/lib.rs

src/lib.rs:
