/root/repo/target/release/deps/gfc-4bd1d38a8056dbc1.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libgfc-4bd1d38a8056dbc1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
