/root/repo/target/release/deps/gfc-57a64d4504dfa949.d: src/lib.rs

/root/repo/target/release/deps/libgfc-57a64d4504dfa949.rlib: src/lib.rs

/root/repo/target/release/deps/libgfc-57a64d4504dfa949.rmeta: src/lib.rs

src/lib.rs:
