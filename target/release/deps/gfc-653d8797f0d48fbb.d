/root/repo/target/release/deps/gfc-653d8797f0d48fbb.d: src/lib.rs

/root/repo/target/release/deps/gfc-653d8797f0d48fbb: src/lib.rs

src/lib.rs:
