/root/repo/target/release/deps/gfc-81c54c419ab14c7f.d: src/lib.rs

/root/repo/target/release/deps/libgfc-81c54c419ab14c7f.rlib: src/lib.rs

/root/repo/target/release/deps/libgfc-81c54c419ab14c7f.rmeta: src/lib.rs

src/lib.rs:
