/root/repo/target/release/deps/gfc-acd78d1d7dbd4be0.d: src/lib.rs

/root/repo/target/release/deps/gfc-acd78d1d7dbd4be0: src/lib.rs

src/lib.rs:
