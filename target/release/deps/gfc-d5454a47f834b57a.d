/root/repo/target/release/deps/gfc-d5454a47f834b57a.d: src/lib.rs

/root/repo/target/release/deps/gfc-d5454a47f834b57a: src/lib.rs

src/lib.rs:
