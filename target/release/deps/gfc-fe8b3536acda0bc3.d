/root/repo/target/release/deps/gfc-fe8b3536acda0bc3.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libgfc-fe8b3536acda0bc3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
