/root/repo/target/release/deps/gfc_analysis-38d3535bde19931d.d: crates/analysis/src/lib.rs crates/analysis/src/deadlock.rs crates/analysis/src/flows.rs crates/analysis/src/series.rs crates/analysis/src/stats.rs crates/analysis/src/throughput.rs

/root/repo/target/release/deps/libgfc_analysis-38d3535bde19931d.rlib: crates/analysis/src/lib.rs crates/analysis/src/deadlock.rs crates/analysis/src/flows.rs crates/analysis/src/series.rs crates/analysis/src/stats.rs crates/analysis/src/throughput.rs

/root/repo/target/release/deps/libgfc_analysis-38d3535bde19931d.rmeta: crates/analysis/src/lib.rs crates/analysis/src/deadlock.rs crates/analysis/src/flows.rs crates/analysis/src/series.rs crates/analysis/src/stats.rs crates/analysis/src/throughput.rs

crates/analysis/src/lib.rs:
crates/analysis/src/deadlock.rs:
crates/analysis/src/flows.rs:
crates/analysis/src/series.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/throughput.rs:
