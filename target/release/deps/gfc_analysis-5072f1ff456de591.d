/root/repo/target/release/deps/gfc_analysis-5072f1ff456de591.d: crates/analysis/src/lib.rs crates/analysis/src/deadlock.rs crates/analysis/src/flows.rs crates/analysis/src/series.rs crates/analysis/src/stats.rs crates/analysis/src/throughput.rs

/root/repo/target/release/deps/gfc_analysis-5072f1ff456de591: crates/analysis/src/lib.rs crates/analysis/src/deadlock.rs crates/analysis/src/flows.rs crates/analysis/src/series.rs crates/analysis/src/stats.rs crates/analysis/src/throughput.rs

crates/analysis/src/lib.rs:
crates/analysis/src/deadlock.rs:
crates/analysis/src/flows.rs:
crates/analysis/src/series.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/throughput.rs:
