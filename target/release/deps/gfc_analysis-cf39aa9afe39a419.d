/root/repo/target/release/deps/gfc_analysis-cf39aa9afe39a419.d: crates/analysis/src/lib.rs crates/analysis/src/deadlock.rs crates/analysis/src/flows.rs crates/analysis/src/series.rs crates/analysis/src/stats.rs crates/analysis/src/throughput.rs Cargo.toml

/root/repo/target/release/deps/libgfc_analysis-cf39aa9afe39a419.rmeta: crates/analysis/src/lib.rs crates/analysis/src/deadlock.rs crates/analysis/src/flows.rs crates/analysis/src/series.rs crates/analysis/src/stats.rs crates/analysis/src/throughput.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/deadlock.rs:
crates/analysis/src/flows.rs:
crates/analysis/src/series.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
