/root/repo/target/release/deps/gfc_bench-1201d4277bd7b7e2.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgfc_bench-1201d4277bd7b7e2.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgfc_bench-1201d4277bd7b7e2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
