/root/repo/target/release/deps/gfc_bench-88e83661f7ca76ad.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgfc_bench-88e83661f7ca76ad.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgfc_bench-88e83661f7ca76ad.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
