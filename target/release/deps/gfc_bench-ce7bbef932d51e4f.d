/root/repo/target/release/deps/gfc_bench-ce7bbef932d51e4f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/gfc_bench-ce7bbef932d51e4f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
