/root/repo/target/release/deps/gfc_bench-d1781a2b35be25df.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/gfc_bench-d1781a2b35be25df: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
