/root/repo/target/release/deps/gfc_bench-d968717a7200eafe.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgfc_bench-d968717a7200eafe.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgfc_bench-d968717a7200eafe.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
