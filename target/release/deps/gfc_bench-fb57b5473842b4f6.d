/root/repo/target/release/deps/gfc_bench-fb57b5473842b4f6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libgfc_bench-fb57b5473842b4f6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
