/root/repo/target/release/deps/gfc_core-421aa8fb8baca1e4.d: crates/core/src/lib.rs crates/core/src/cbfc.rs crates/core/src/conceptual.rs crates/core/src/fc_mode.rs crates/core/src/frames.rs crates/core/src/gfc_buffer.rs crates/core/src/gfc_time.rs crates/core/src/mapping.rs crates/core/src/params.rs crates/core/src/pfc.rs crates/core/src/rate_limiter.rs crates/core/src/theorems.rs crates/core/src/units.rs Cargo.toml

/root/repo/target/release/deps/libgfc_core-421aa8fb8baca1e4.rmeta: crates/core/src/lib.rs crates/core/src/cbfc.rs crates/core/src/conceptual.rs crates/core/src/fc_mode.rs crates/core/src/frames.rs crates/core/src/gfc_buffer.rs crates/core/src/gfc_time.rs crates/core/src/mapping.rs crates/core/src/params.rs crates/core/src/pfc.rs crates/core/src/rate_limiter.rs crates/core/src/theorems.rs crates/core/src/units.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cbfc.rs:
crates/core/src/conceptual.rs:
crates/core/src/fc_mode.rs:
crates/core/src/frames.rs:
crates/core/src/gfc_buffer.rs:
crates/core/src/gfc_time.rs:
crates/core/src/mapping.rs:
crates/core/src/params.rs:
crates/core/src/pfc.rs:
crates/core/src/rate_limiter.rs:
crates/core/src/theorems.rs:
crates/core/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
