/root/repo/target/release/deps/gfc_dcqcn-6e2eba6e6ee8e6fe.d: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs

/root/repo/target/release/deps/gfc_dcqcn-6e2eba6e6ee8e6fe: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs

crates/dcqcn/src/lib.rs:
crates/dcqcn/src/cp.rs:
crates/dcqcn/src/np.rs:
crates/dcqcn/src/rp.rs:
