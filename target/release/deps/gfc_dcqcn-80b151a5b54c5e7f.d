/root/repo/target/release/deps/gfc_dcqcn-80b151a5b54c5e7f.d: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs Cargo.toml

/root/repo/target/release/deps/libgfc_dcqcn-80b151a5b54c5e7f.rmeta: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs Cargo.toml

crates/dcqcn/src/lib.rs:
crates/dcqcn/src/cp.rs:
crates/dcqcn/src/np.rs:
crates/dcqcn/src/rp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
