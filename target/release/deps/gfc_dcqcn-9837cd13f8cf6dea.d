/root/repo/target/release/deps/gfc_dcqcn-9837cd13f8cf6dea.d: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs

/root/repo/target/release/deps/libgfc_dcqcn-9837cd13f8cf6dea.rlib: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs

/root/repo/target/release/deps/libgfc_dcqcn-9837cd13f8cf6dea.rmeta: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs

crates/dcqcn/src/lib.rs:
crates/dcqcn/src/cp.rs:
crates/dcqcn/src/np.rs:
crates/dcqcn/src/rp.rs:
