/root/repo/target/release/deps/gfc_dcqcn-e0c884711f927963.d: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs Cargo.toml

/root/repo/target/release/deps/libgfc_dcqcn-e0c884711f927963.rmeta: crates/dcqcn/src/lib.rs crates/dcqcn/src/cp.rs crates/dcqcn/src/np.rs crates/dcqcn/src/rp.rs Cargo.toml

crates/dcqcn/src/lib.rs:
crates/dcqcn/src/cp.rs:
crates/dcqcn/src/np.rs:
crates/dcqcn/src/rp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
