/root/repo/target/release/deps/gfc_experiments-b469faefc7e1365f.d: crates/experiments/src/lib.rs crates/experiments/src/ablation.rs crates/experiments/src/common.rs crates/experiments/src/fig05.rs crates/experiments/src/fig09.rs crates/experiments/src/fig10.rs crates/experiments/src/fig12.rs crates/experiments/src/fig13.rs crates/experiments/src/fig14.rs crates/experiments/src/fig18.rs crates/experiments/src/fig19.rs crates/experiments/src/fig20.rs crates/experiments/src/perf.rs crates/experiments/src/table1.rs Cargo.toml

/root/repo/target/release/deps/libgfc_experiments-b469faefc7e1365f.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablation.rs crates/experiments/src/common.rs crates/experiments/src/fig05.rs crates/experiments/src/fig09.rs crates/experiments/src/fig10.rs crates/experiments/src/fig12.rs crates/experiments/src/fig13.rs crates/experiments/src/fig14.rs crates/experiments/src/fig18.rs crates/experiments/src/fig19.rs crates/experiments/src/fig20.rs crates/experiments/src/perf.rs crates/experiments/src/table1.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/ablation.rs:
crates/experiments/src/common.rs:
crates/experiments/src/fig05.rs:
crates/experiments/src/fig09.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig12.rs:
crates/experiments/src/fig13.rs:
crates/experiments/src/fig14.rs:
crates/experiments/src/fig18.rs:
crates/experiments/src/fig19.rs:
crates/experiments/src/fig20.rs:
crates/experiments/src/perf.rs:
crates/experiments/src/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
