/root/repo/target/release/deps/gfc_experiments-e93b95555560879f.d: crates/experiments/src/lib.rs crates/experiments/src/ablation.rs crates/experiments/src/common.rs crates/experiments/src/fig05.rs crates/experiments/src/fig09.rs crates/experiments/src/fig10.rs crates/experiments/src/fig12.rs crates/experiments/src/fig13.rs crates/experiments/src/fig14.rs crates/experiments/src/fig18.rs crates/experiments/src/fig19.rs crates/experiments/src/fig20.rs crates/experiments/src/perf.rs crates/experiments/src/table1.rs

/root/repo/target/release/deps/gfc_experiments-e93b95555560879f: crates/experiments/src/lib.rs crates/experiments/src/ablation.rs crates/experiments/src/common.rs crates/experiments/src/fig05.rs crates/experiments/src/fig09.rs crates/experiments/src/fig10.rs crates/experiments/src/fig12.rs crates/experiments/src/fig13.rs crates/experiments/src/fig14.rs crates/experiments/src/fig18.rs crates/experiments/src/fig19.rs crates/experiments/src/fig20.rs crates/experiments/src/perf.rs crates/experiments/src/table1.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablation.rs:
crates/experiments/src/common.rs:
crates/experiments/src/fig05.rs:
crates/experiments/src/fig09.rs:
crates/experiments/src/fig10.rs:
crates/experiments/src/fig12.rs:
crates/experiments/src/fig13.rs:
crates/experiments/src/fig14.rs:
crates/experiments/src/fig18.rs:
crates/experiments/src/fig19.rs:
crates/experiments/src/fig20.rs:
crates/experiments/src/perf.rs:
crates/experiments/src/table1.rs:
