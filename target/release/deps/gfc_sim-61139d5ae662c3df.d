/root/repo/target/release/deps/gfc_sim-61139d5ae662c3df.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fc.rs crates/sim/src/flowgen.rs crates/sim/src/network.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/telemetry.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/release/deps/libgfc_sim-61139d5ae662c3df.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fc.rs crates/sim/src/flowgen.rs crates/sim/src/network.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/telemetry.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/event.rs:
crates/sim/src/fc.rs:
crates/sim/src/flowgen.rs:
crates/sim/src/network.rs:
crates/sim/src/packet.rs:
crates/sim/src/port.rs:
crates/sim/src/telemetry.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
