/root/repo/target/release/deps/gfc_sim-9191d70aef4409f6.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fc.rs crates/sim/src/flowgen.rs crates/sim/src/network.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/telemetry.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libgfc_sim-9191d70aef4409f6.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fc.rs crates/sim/src/flowgen.rs crates/sim/src/network.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/telemetry.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libgfc_sim-9191d70aef4409f6.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fc.rs crates/sim/src/flowgen.rs crates/sim/src/network.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/telemetry.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/event.rs:
crates/sim/src/fc.rs:
crates/sim/src/flowgen.rs:
crates/sim/src/network.rs:
crates/sim/src/packet.rs:
crates/sim/src/port.rs:
crates/sim/src/telemetry.rs:
crates/sim/src/trace.rs:
