/root/repo/target/release/deps/gfc_sim-f949d0ade25bd3fd.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fc.rs crates/sim/src/flowgen.rs crates/sim/src/network.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/gfc_sim-f949d0ade25bd3fd: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/event.rs crates/sim/src/fc.rs crates/sim/src/flowgen.rs crates/sim/src/network.rs crates/sim/src/packet.rs crates/sim/src/port.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/event.rs:
crates/sim/src/fc.rs:
crates/sim/src/flowgen.rs:
crates/sim/src/network.rs:
crates/sim/src/packet.rs:
crates/sim/src/port.rs:
crates/sim/src/trace.rs:
