/root/repo/target/release/deps/gfc_telemetry-0160fe508c28ebf1.d: crates/telemetry/src/lib.rs crates/telemetry/src/forensics.rs crates/telemetry/src/recorder.rs crates/telemetry/src/registry.rs

/root/repo/target/release/deps/libgfc_telemetry-0160fe508c28ebf1.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/forensics.rs crates/telemetry/src/recorder.rs crates/telemetry/src/registry.rs

/root/repo/target/release/deps/libgfc_telemetry-0160fe508c28ebf1.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/forensics.rs crates/telemetry/src/recorder.rs crates/telemetry/src/registry.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/forensics.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/registry.rs:
