/root/repo/target/release/deps/gfc_telemetry-59dc37a9018daf1f.d: crates/telemetry/src/lib.rs crates/telemetry/src/forensics.rs crates/telemetry/src/recorder.rs crates/telemetry/src/registry.rs Cargo.toml

/root/repo/target/release/deps/libgfc_telemetry-59dc37a9018daf1f.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/forensics.rs crates/telemetry/src/recorder.rs crates/telemetry/src/registry.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/forensics.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
