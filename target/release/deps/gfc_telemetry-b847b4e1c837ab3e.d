/root/repo/target/release/deps/gfc_telemetry-b847b4e1c837ab3e.d: crates/telemetry/src/lib.rs crates/telemetry/src/forensics.rs crates/telemetry/src/recorder.rs crates/telemetry/src/registry.rs

/root/repo/target/release/deps/gfc_telemetry-b847b4e1c837ab3e: crates/telemetry/src/lib.rs crates/telemetry/src/forensics.rs crates/telemetry/src/recorder.rs crates/telemetry/src/registry.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/forensics.rs:
crates/telemetry/src/recorder.rs:
crates/telemetry/src/registry.rs:
