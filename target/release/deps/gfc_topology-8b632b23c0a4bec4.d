/root/repo/target/release/deps/gfc_topology-8b632b23c0a4bec4.d: crates/topology/src/lib.rs crates/topology/src/cbd.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/routing.rs crates/topology/src/scenarios.rs

/root/repo/target/release/deps/gfc_topology-8b632b23c0a4bec4: crates/topology/src/lib.rs crates/topology/src/cbd.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/routing.rs crates/topology/src/scenarios.rs

crates/topology/src/lib.rs:
crates/topology/src/cbd.rs:
crates/topology/src/fattree.rs:
crates/topology/src/graph.rs:
crates/topology/src/routing.rs:
crates/topology/src/scenarios.rs:
