/root/repo/target/release/deps/gfc_topology-a9d03627573d9089.d: crates/topology/src/lib.rs crates/topology/src/cbd.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/routing.rs crates/topology/src/scenarios.rs

/root/repo/target/release/deps/libgfc_topology-a9d03627573d9089.rlib: crates/topology/src/lib.rs crates/topology/src/cbd.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/routing.rs crates/topology/src/scenarios.rs

/root/repo/target/release/deps/libgfc_topology-a9d03627573d9089.rmeta: crates/topology/src/lib.rs crates/topology/src/cbd.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/routing.rs crates/topology/src/scenarios.rs

crates/topology/src/lib.rs:
crates/topology/src/cbd.rs:
crates/topology/src/fattree.rs:
crates/topology/src/graph.rs:
crates/topology/src/routing.rs:
crates/topology/src/scenarios.rs:
