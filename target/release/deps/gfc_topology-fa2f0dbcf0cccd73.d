/root/repo/target/release/deps/gfc_topology-fa2f0dbcf0cccd73.d: crates/topology/src/lib.rs crates/topology/src/cbd.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/routing.rs crates/topology/src/scenarios.rs Cargo.toml

/root/repo/target/release/deps/libgfc_topology-fa2f0dbcf0cccd73.rmeta: crates/topology/src/lib.rs crates/topology/src/cbd.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/routing.rs crates/topology/src/scenarios.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/cbd.rs:
crates/topology/src/fattree.rs:
crates/topology/src/graph.rs:
crates/topology/src/routing.rs:
crates/topology/src/scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
