/root/repo/target/release/deps/gfc_verify-799c3861389096b7.d: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs

/root/repo/target/release/deps/libgfc_verify-799c3861389096b7.rlib: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs

/root/repo/target/release/deps/libgfc_verify-799c3861389096b7.rmeta: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs

crates/verify/src/lib.rs:
crates/verify/src/checks.rs:
crates/verify/src/diag.rs:
crates/verify/src/spec.rs:
