/root/repo/target/release/deps/gfc_verify-ac75395ec3ccbc14.d: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs

/root/repo/target/release/deps/gfc_verify-ac75395ec3ccbc14: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs

crates/verify/src/lib.rs:
crates/verify/src/checks.rs:
crates/verify/src/diag.rs:
crates/verify/src/spec.rs:
