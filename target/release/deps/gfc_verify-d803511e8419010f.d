/root/repo/target/release/deps/gfc_verify-d803511e8419010f.d: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs Cargo.toml

/root/repo/target/release/deps/libgfc_verify-d803511e8419010f.rmeta: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs Cargo.toml

crates/verify/src/lib.rs:
crates/verify/src/checks.rs:
crates/verify/src/diag.rs:
crates/verify/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
