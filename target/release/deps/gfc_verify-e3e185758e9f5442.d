/root/repo/target/release/deps/gfc_verify-e3e185758e9f5442.d: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs

/root/repo/target/release/deps/gfc_verify-e3e185758e9f5442: crates/verify/src/lib.rs crates/verify/src/checks.rs crates/verify/src/diag.rs crates/verify/src/spec.rs

crates/verify/src/lib.rs:
crates/verify/src/checks.rs:
crates/verify/src/diag.rs:
crates/verify/src/spec.rs:
