/root/repo/target/release/deps/gfc_verify-febcf6be7b50243d.d: crates/verify/src/lib.rs

/root/repo/target/release/deps/libgfc_verify-febcf6be7b50243d.rlib: crates/verify/src/lib.rs

/root/repo/target/release/deps/libgfc_verify-febcf6be7b50243d.rmeta: crates/verify/src/lib.rs

crates/verify/src/lib.rs:
