/root/repo/target/release/deps/gfc_workload-8394660329f9894c.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs

/root/repo/target/release/deps/gfc_workload-8394660329f9894c: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/patterns.rs:
