/root/repo/target/release/deps/gfc_workload-bbf4fa458c71df33.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs Cargo.toml

/root/repo/target/release/deps/libgfc_workload-bbf4fa458c71df33.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
