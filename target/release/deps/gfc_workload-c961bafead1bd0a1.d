/root/repo/target/release/deps/gfc_workload-c961bafead1bd0a1.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs

/root/repo/target/release/deps/libgfc_workload-c961bafead1bd0a1.rlib: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs

/root/repo/target/release/deps/libgfc_workload-c961bafead1bd0a1.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/patterns.rs:
