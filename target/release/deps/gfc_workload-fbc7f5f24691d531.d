/root/repo/target/release/deps/gfc_workload-fbc7f5f24691d531.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs Cargo.toml

/root/repo/target/release/deps/libgfc_workload-fbc7f5f24691d531.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/patterns.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
