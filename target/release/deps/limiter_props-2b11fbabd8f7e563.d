/root/repo/target/release/deps/limiter_props-2b11fbabd8f7e563.d: crates/core/tests/limiter_props.rs Cargo.toml

/root/repo/target/release/deps/liblimiter_props-2b11fbabd8f7e563.rmeta: crates/core/tests/limiter_props.rs Cargo.toml

crates/core/tests/limiter_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
