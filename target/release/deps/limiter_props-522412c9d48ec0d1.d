/root/repo/target/release/deps/limiter_props-522412c9d48ec0d1.d: crates/core/tests/limiter_props.rs

/root/repo/target/release/deps/limiter_props-522412c9d48ec0d1: crates/core/tests/limiter_props.rs

crates/core/tests/limiter_props.rs:
