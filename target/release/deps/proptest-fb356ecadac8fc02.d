/root/repo/target/release/deps/proptest-fb356ecadac8fc02.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-fb356ecadac8fc02.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-fb356ecadac8fc02.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/array.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/test_runner.rs:
