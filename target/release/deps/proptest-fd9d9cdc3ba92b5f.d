/root/repo/target/release/deps/proptest-fd9d9cdc3ba92b5f.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-fd9d9cdc3ba92b5f.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/array.rs vendor/proptest/src/collection.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/array.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/test_runner.rs:
