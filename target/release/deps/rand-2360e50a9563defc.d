/root/repo/target/release/deps/rand-2360e50a9563defc.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-2360e50a9563defc.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
