/root/repo/target/release/deps/ring_deadlock-5dd3c5c2b741b8b1.d: crates/sim/tests/ring_deadlock.rs

/root/repo/target/release/deps/ring_deadlock-5dd3c5c2b741b8b1: crates/sim/tests/ring_deadlock.rs

crates/sim/tests/ring_deadlock.rs:
