/root/repo/target/release/deps/ring_deadlock-831c1124b44a52f1.d: crates/sim/tests/ring_deadlock.rs

/root/repo/target/release/deps/ring_deadlock-831c1124b44a52f1: crates/sim/tests/ring_deadlock.rs

crates/sim/tests/ring_deadlock.rs:
