/root/repo/target/release/deps/ring_deadlock-b48ce8e5b9bb4914.d: crates/sim/tests/ring_deadlock.rs

/root/repo/target/release/deps/ring_deadlock-b48ce8e5b9bb4914: crates/sim/tests/ring_deadlock.rs

crates/sim/tests/ring_deadlock.rs:
