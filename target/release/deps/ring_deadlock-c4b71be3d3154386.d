/root/repo/target/release/deps/ring_deadlock-c4b71be3d3154386.d: crates/sim/tests/ring_deadlock.rs Cargo.toml

/root/repo/target/release/deps/libring_deadlock-c4b71be3d3154386.rmeta: crates/sim/tests/ring_deadlock.rs Cargo.toml

crates/sim/tests/ring_deadlock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
