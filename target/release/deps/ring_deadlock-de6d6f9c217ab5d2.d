/root/repo/target/release/deps/ring_deadlock-de6d6f9c217ab5d2.d: crates/sim/tests/ring_deadlock.rs Cargo.toml

/root/repo/target/release/deps/libring_deadlock-de6d6f9c217ab5d2.rmeta: crates/sim/tests/ring_deadlock.rs Cargo.toml

crates/sim/tests/ring_deadlock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
