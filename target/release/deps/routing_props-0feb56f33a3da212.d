/root/repo/target/release/deps/routing_props-0feb56f33a3da212.d: crates/topology/tests/routing_props.rs

/root/repo/target/release/deps/routing_props-0feb56f33a3da212: crates/topology/tests/routing_props.rs

crates/topology/tests/routing_props.rs:
