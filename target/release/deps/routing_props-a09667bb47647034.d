/root/repo/target/release/deps/routing_props-a09667bb47647034.d: crates/topology/tests/routing_props.rs Cargo.toml

/root/repo/target/release/deps/librouting_props-a09667bb47647034.rmeta: crates/topology/tests/routing_props.rs Cargo.toml

crates/topology/tests/routing_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
