/root/repo/target/release/deps/serde-b7c07cd838fa33ca.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b7c07cd838fa33ca.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
