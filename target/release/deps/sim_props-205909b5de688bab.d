/root/repo/target/release/deps/sim_props-205909b5de688bab.d: crates/sim/tests/sim_props.rs Cargo.toml

/root/repo/target/release/deps/libsim_props-205909b5de688bab.rmeta: crates/sim/tests/sim_props.rs Cargo.toml

crates/sim/tests/sim_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
