/root/repo/target/release/deps/sim_props-209a9684682f5881.d: crates/sim/tests/sim_props.rs

/root/repo/target/release/deps/sim_props-209a9684682f5881: crates/sim/tests/sim_props.rs

crates/sim/tests/sim_props.rs:
