/root/repo/target/release/deps/sim_props-427415b183ce29d9.d: crates/sim/tests/sim_props.rs

/root/repo/target/release/deps/sim_props-427415b183ce29d9: crates/sim/tests/sim_props.rs

crates/sim/tests/sim_props.rs:
