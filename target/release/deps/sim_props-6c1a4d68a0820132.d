/root/repo/target/release/deps/sim_props-6c1a4d68a0820132.d: crates/sim/tests/sim_props.rs Cargo.toml

/root/repo/target/release/deps/libsim_props-6c1a4d68a0820132.rmeta: crates/sim/tests/sim_props.rs Cargo.toml

crates/sim/tests/sim_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
