/root/repo/target/release/deps/table1_deadlock_census-d2849beae6be1fbc.d: crates/bench/benches/table1_deadlock_census.rs

/root/repo/target/release/deps/table1_deadlock_census-d2849beae6be1fbc: crates/bench/benches/table1_deadlock_census.rs

crates/bench/benches/table1_deadlock_census.rs:
