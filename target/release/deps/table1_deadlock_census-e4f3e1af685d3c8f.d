/root/repo/target/release/deps/table1_deadlock_census-e4f3e1af685d3c8f.d: crates/bench/benches/table1_deadlock_census.rs Cargo.toml

/root/repo/target/release/deps/libtable1_deadlock_census-e4f3e1af685d3c8f.rmeta: crates/bench/benches/table1_deadlock_census.rs Cargo.toml

crates/bench/benches/table1_deadlock_census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
