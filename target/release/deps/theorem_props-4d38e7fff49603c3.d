/root/repo/target/release/deps/theorem_props-4d38e7fff49603c3.d: tests/theorem_props.rs

/root/repo/target/release/deps/theorem_props-4d38e7fff49603c3: tests/theorem_props.rs

tests/theorem_props.rs:
