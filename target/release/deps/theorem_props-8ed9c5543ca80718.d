/root/repo/target/release/deps/theorem_props-8ed9c5543ca80718.d: tests/theorem_props.rs

/root/repo/target/release/deps/theorem_props-8ed9c5543ca80718: tests/theorem_props.rs

tests/theorem_props.rs:
