/root/repo/target/release/deps/theorem_props-9ac5df9691bededc.d: tests/theorem_props.rs

/root/repo/target/release/deps/theorem_props-9ac5df9691bededc: tests/theorem_props.rs

tests/theorem_props.rs:
