/root/repo/target/release/deps/theorem_props-ab7f6f228a293b12.d: tests/theorem_props.rs Cargo.toml

/root/repo/target/release/deps/libtheorem_props-ab7f6f228a293b12.rmeta: tests/theorem_props.rs Cargo.toml

tests/theorem_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
