/root/repo/target/release/examples/dcqcn_interaction-30abfad74f62c71a.d: examples/dcqcn_interaction.rs Cargo.toml

/root/repo/target/release/examples/libdcqcn_interaction-30abfad74f62c71a.rmeta: examples/dcqcn_interaction.rs Cargo.toml

examples/dcqcn_interaction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
