/root/repo/target/release/examples/dcqcn_interaction-845d0ceea8794d73.d: examples/dcqcn_interaction.rs

/root/repo/target/release/examples/dcqcn_interaction-845d0ceea8794d73: examples/dcqcn_interaction.rs

examples/dcqcn_interaction.rs:
