/root/repo/target/release/examples/dcqcn_interaction-b62e6c767b8ece60.d: examples/dcqcn_interaction.rs

/root/repo/target/release/examples/dcqcn_interaction-b62e6c767b8ece60: examples/dcqcn_interaction.rs

examples/dcqcn_interaction.rs:
