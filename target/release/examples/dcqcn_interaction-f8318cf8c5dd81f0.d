/root/repo/target/release/examples/dcqcn_interaction-f8318cf8c5dd81f0.d: examples/dcqcn_interaction.rs

/root/repo/target/release/examples/dcqcn_interaction-f8318cf8c5dd81f0: examples/dcqcn_interaction.rs

examples/dcqcn_interaction.rs:
