/root/repo/target/release/examples/deadlock_ring-069d518327766715.d: examples/deadlock_ring.rs

/root/repo/target/release/examples/deadlock_ring-069d518327766715: examples/deadlock_ring.rs

examples/deadlock_ring.rs:
