/root/repo/target/release/examples/deadlock_ring-06b31ffd1f42f7ac.d: examples/deadlock_ring.rs

/root/repo/target/release/examples/deadlock_ring-06b31ffd1f42f7ac: examples/deadlock_ring.rs

examples/deadlock_ring.rs:
