/root/repo/target/release/examples/deadlock_ring-aac6f4aee4a70b25.d: examples/deadlock_ring.rs Cargo.toml

/root/repo/target/release/examples/libdeadlock_ring-aac6f4aee4a70b25.rmeta: examples/deadlock_ring.rs Cargo.toml

examples/deadlock_ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
