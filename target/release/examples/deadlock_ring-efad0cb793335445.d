/root/repo/target/release/examples/deadlock_ring-efad0cb793335445.d: examples/deadlock_ring.rs

/root/repo/target/release/examples/deadlock_ring-efad0cb793335445: examples/deadlock_ring.rs

examples/deadlock_ring.rs:
