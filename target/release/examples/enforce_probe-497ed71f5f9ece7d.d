/root/repo/target/release/examples/enforce_probe-497ed71f5f9ece7d.d: examples/enforce_probe.rs

/root/repo/target/release/examples/enforce_probe-497ed71f5f9ece7d: examples/enforce_probe.rs

examples/enforce_probe.rs:
