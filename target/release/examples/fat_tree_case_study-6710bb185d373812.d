/root/repo/target/release/examples/fat_tree_case_study-6710bb185d373812.d: examples/fat_tree_case_study.rs Cargo.toml

/root/repo/target/release/examples/libfat_tree_case_study-6710bb185d373812.rmeta: examples/fat_tree_case_study.rs Cargo.toml

examples/fat_tree_case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
