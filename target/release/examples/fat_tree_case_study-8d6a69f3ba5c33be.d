/root/repo/target/release/examples/fat_tree_case_study-8d6a69f3ba5c33be.d: examples/fat_tree_case_study.rs

/root/repo/target/release/examples/fat_tree_case_study-8d6a69f3ba5c33be: examples/fat_tree_case_study.rs

examples/fat_tree_case_study.rs:
