/root/repo/target/release/examples/fat_tree_case_study-acbccf8bcfb3338f.d: examples/fat_tree_case_study.rs

/root/repo/target/release/examples/fat_tree_case_study-acbccf8bcfb3338f: examples/fat_tree_case_study.rs

examples/fat_tree_case_study.rs:
