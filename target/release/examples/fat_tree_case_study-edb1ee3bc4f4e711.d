/root/repo/target/release/examples/fat_tree_case_study-edb1ee3bc4f4e711.d: examples/fat_tree_case_study.rs

/root/repo/target/release/examples/fat_tree_case_study-edb1ee3bc4f4e711: examples/fat_tree_case_study.rs

examples/fat_tree_case_study.rs:
