/root/repo/target/release/examples/fig18_probe-1baa067f217439e2.d: crates/experiments/examples/fig18_probe.rs

/root/repo/target/release/examples/fig18_probe-1baa067f217439e2: crates/experiments/examples/fig18_probe.rs

crates/experiments/examples/fig18_probe.rs:
