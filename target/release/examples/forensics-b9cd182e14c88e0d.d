/root/repo/target/release/examples/forensics-b9cd182e14c88e0d.d: examples/forensics.rs Cargo.toml

/root/repo/target/release/examples/libforensics-b9cd182e14c88e0d.rmeta: examples/forensics.rs Cargo.toml

examples/forensics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
