/root/repo/target/release/examples/forensics-dea3d15d0e184287.d: examples/forensics.rs

/root/repo/target/release/examples/forensics-dea3d15d0e184287: examples/forensics.rs

examples/forensics.rs:
