/root/repo/target/release/examples/overhead_check-f5df1fc47eeab865.d: examples/overhead_check.rs

/root/repo/target/release/examples/overhead_check-f5df1fc47eeab865: examples/overhead_check.rs

examples/overhead_check.rs:
