/root/repo/target/release/examples/paper_report-3777e1a539860d4a.d: examples/paper_report.rs

/root/repo/target/release/examples/paper_report-3777e1a539860d4a: examples/paper_report.rs

examples/paper_report.rs:
