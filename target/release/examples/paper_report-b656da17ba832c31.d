/root/repo/target/release/examples/paper_report-b656da17ba832c31.d: examples/paper_report.rs

/root/repo/target/release/examples/paper_report-b656da17ba832c31: examples/paper_report.rs

examples/paper_report.rs:
