/root/repo/target/release/examples/paper_report-c5162f2caf9f8d72.d: examples/paper_report.rs

/root/repo/target/release/examples/paper_report-c5162f2caf9f8d72: examples/paper_report.rs

examples/paper_report.rs:
