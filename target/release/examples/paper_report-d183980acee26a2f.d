/root/repo/target/release/examples/paper_report-d183980acee26a2f.d: examples/paper_report.rs Cargo.toml

/root/repo/target/release/examples/libpaper_report-d183980acee26a2f.rmeta: examples/paper_report.rs Cargo.toml

examples/paper_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
