/root/repo/target/release/examples/preflight-0387f743589288e6.d: examples/preflight.rs Cargo.toml

/root/repo/target/release/examples/libpreflight-0387f743589288e6.rmeta: examples/preflight.rs Cargo.toml

examples/preflight.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
