/root/repo/target/release/examples/preflight-61b811e29090a2f8.d: examples/preflight.rs

/root/repo/target/release/examples/preflight-61b811e29090a2f8: examples/preflight.rs

examples/preflight.rs:
