/root/repo/target/release/examples/preflight-a89032a55ad0a1ae.d: examples/preflight.rs Cargo.toml

/root/repo/target/release/examples/libpreflight-a89032a55ad0a1ae.rmeta: examples/preflight.rs Cargo.toml

examples/preflight.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
