/root/repo/target/release/examples/preflight-c415b7c92889bd93.d: examples/preflight.rs

/root/repo/target/release/examples/preflight-c415b7c92889bd93: examples/preflight.rs

examples/preflight.rs:
