/root/repo/target/release/examples/quickstart-0c8774f6889a240e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0c8774f6889a240e: examples/quickstart.rs

examples/quickstart.rs:
