/root/repo/target/release/examples/quickstart-308a51048646a1b1.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-308a51048646a1b1.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
