/root/repo/target/release/examples/quickstart-5ba93d3b4aa19eed.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5ba93d3b4aa19eed: examples/quickstart.rs

examples/quickstart.rs:
