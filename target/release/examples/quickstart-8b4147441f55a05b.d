/root/repo/target/release/examples/quickstart-8b4147441f55a05b.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8b4147441f55a05b: examples/quickstart.rs

examples/quickstart.rs:
