/root/repo/target/release/examples/wedge_probe-5e9d97c07af60d2f.d: crates/sim/examples/wedge_probe.rs

/root/repo/target/release/examples/wedge_probe-5e9d97c07af60d2f: crates/sim/examples/wedge_probe.rs

crates/sim/examples/wedge_probe.rs:
