//! Cross-crate integration: workload-driven simulations over generated
//! topologies, exercising the full public API the way a downstream user
//! would.

use gfc::prelude::*;
use gfc_sim::config::PumpPolicy;

fn base_cfg(fc: FcMode, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::default_10g();
    // Packet-granular stage crossings can overshoot Bm by a few frames in
    // coupled scenarios; keep the experiments' 4-MTU headroom above Bm.
    cfg.buffer_bytes = kb(300) + 4 * 1500;
    cfg.fc = fc.into();
    cfg.seed = seed;
    cfg
}

fn gfc_mode() -> FcMode {
    FcMode::GfcBuffer { bm: kb(300), b1: kb(281) }
}

#[test]
fn closed_loop_enterprise_on_failed_fat_tree_completes_flows() {
    let mut ft = FatTree::new(4);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    ft.inject_failures(&mut rng, 0.05);
    let racks: Vec<u32> = (0..ft.hosts.len()).map(|h| ft.rack_of_host(h) as u32).collect();
    let mut net = Network::new(
        ft.topo.clone(),
        Routing::spf(),
        base_cfg(gfc_mode(), 99),
        TraceConfig::none(),
    );
    net.install_workload(Box::new(ClosedLoopWorkload {
        sizes: FlowSizeDist::Empirical(EmpiricalCdf::enterprise()),
        dests: DestPolicy::inter_rack(racks),
        num_hosts: ft.hosts.len(),
        prio: 0,
        stop_after: Some(Time::from_millis(8)),
    }));
    net.run_until(Time::from_millis(20));
    assert_eq!(net.stats().drops, 0, "lossless violated");
    assert!(net.ledger().finished() > 100, "only {} flows finished", net.ledger().finished());
    // Slowdowns are sane: every finished flow took at least the unloaded time.
    let sds = net.ledger().slowdowns(10_000_000_000, 1_000_000, 1500);
    assert!(!sds.is_empty());
    for (i, &sd) in sds.iter().enumerate() {
        assert!(sd > 0.99, "flow {i} finished faster than physics: slowdown {sd}");
    }
}

#[test]
fn all_schemes_are_lossless_under_incast() {
    use gfc_core::theorems::cbfc_recommended_period;
    let period = cbfc_recommended_period(Rate::from_gbps(10));
    let schemes = [
        FcMode::Pfc { xoff: kb(280), xon: kb(277) },
        FcMode::Cbfc { period },
        FcMode::GfcBuffer { bm: kb(300), b1: kb(281) },
        FcMode::GfcTime { b0: kb(159), bm: kb(300), period },
    ];
    for fc in schemes {
        for senders in [2usize, 4, 8] {
            let inc = Incast::new(senders);
            let mut net = Network::new(
                inc.topo.clone(),
                Routing::spf(),
                base_cfg(fc, 5),
                TraceConfig::none(),
            );
            for &s in &inc.senders {
                net.start_flow(s, inc.receiver, Some(2_000_000), 0).expect("route");
            }
            net.run_until(Time::from_millis(40));
            assert_eq!(net.stats().drops, 0, "{fc:?} with {senders} senders dropped");
            assert_eq!(
                net.ledger().finished(),
                senders,
                "{fc:?} with {senders} senders: flows unfinished"
            );
        }
    }
    use gfc_core::units::Rate;
}

#[test]
fn incast_fair_share_is_respected() {
    // 4-to-1 incast, equal flows: completion times within 25% of each
    // other under GFC (fine-grained rate control is fair).
    let inc = Incast::new(4);
    let mut net = Network::new(
        inc.topo.clone(),
        Routing::spf(),
        base_cfg(gfc_mode(), 6),
        TraceConfig::none(),
    );
    for &s in &inc.senders {
        net.start_flow(s, inc.receiver, Some(3_000_000), 0).expect("route");
    }
    net.run_until(Time::from_millis(50));
    let fcts: Vec<f64> =
        net.ledger().records().iter().map(|r| r.fct_ps().expect("finished") as f64).collect();
    assert_eq!(fcts.len(), 4);
    let max = fcts.iter().cloned().fold(0.0, f64::max);
    let min = fcts.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max / min < 1.25, "unfair incast: FCTs {fcts:?}");
    // Aggregate ≈ bottleneck capacity: 12 MB over a 10 Gb/s link ≈ 9.6 ms.
    assert!(max < 13e9, "incast too slow: {max} ps");
}

#[test]
fn output_queued_and_round_robin_both_work_when_uncongested() {
    for pump in [PumpPolicy::OutputQueued, PumpPolicy::RoundRobin, PumpPolicy::ArrivalOrder] {
        let ft = FatTree::new(4);
        let mut cfg = base_cfg(gfc_mode(), 7);
        cfg.pump = pump;
        let mut net = Network::new(ft.topo.clone(), Routing::spf(), cfg, TraceConfig::none());
        // A permutation at half load: no congestion, all finish fast.
        for i in 0..8usize {
            net.start_flow(ft.hosts[i], ft.hosts[15 - i], Some(500_000), 0).expect("route");
        }
        net.run_until(Time::from_millis(10));
        assert_eq!(net.stats().drops, 0, "{pump:?} dropped");
        assert_eq!(net.ledger().finished(), 8, "{pump:?}: unfinished flows");
    }
}

#[test]
fn multi_priority_queues_isolate_traffic() {
    // Two priorities on a 2-to-1 incast: per-priority GFC feedback.
    let inc = Incast::new(2);
    let mut cfg = base_cfg(gfc_mode(), 8);
    cfg.num_priorities = 2;
    let mut net = Network::new(inc.topo.clone(), Routing::spf(), cfg, TraceConfig::none());
    net.start_flow(inc.senders[0], inc.receiver, Some(2_000_000), 0).expect("route");
    net.start_flow(inc.senders[1], inc.receiver, Some(2_000_000), 1).expect("route");
    net.run_until(Time::from_millis(30));
    assert_eq!(net.stats().drops, 0);
    assert_eq!(net.ledger().finished(), 2);
}

#[test]
fn conceptual_gfc_runs_end_to_end() {
    let inc = Incast::new(2);
    let mut cfg =
        base_cfg(FcMode::Conceptual { b0: kb(50), bm: kb(100), tau: Dur::from_micros(10) }, 9);
    cfg.buffer_bytes = kb(120);
    let mut net = Network::new(inc.topo.clone(), Routing::spf(), cfg, TraceConfig::none());
    for &s in &inc.senders {
        net.start_flow(s, inc.receiver, Some(1_000_000), 0).expect("route");
    }
    net.run_until(Time::from_millis(20));
    assert_eq!(net.stats().drops, 0);
    assert_eq!(net.ledger().finished(), 2);
}

#[test]
fn unroutable_destinations_are_skipped_gracefully() {
    // Partition the fat-tree: flows to unreachable hosts must not be
    // started, and the workload retries other destinations.
    let mut ft = FatTree::new(4);
    // Fail every uplink of SE0 so hosts 0/1 are isolated.
    let se0 = ft.edges[0];
    let links: Vec<_> = ft.topo.ports(se0).iter().map(|&(_, l)| l).collect();
    for l in links {
        let link = ft.topo.link(l);
        // Keep host links, cut edge-agg uplinks.
        if ft.aggs.contains(&link.a) || ft.aggs.contains(&link.b) {
            ft.topo.fail_link(l);
        }
    }
    let mut net = Network::new(
        ft.topo.clone(),
        Routing::spf(),
        base_cfg(gfc_mode(), 10),
        TraceConfig::none(),
    );
    // Direct attempt across the partition fails cleanly.
    assert!(net.start_flow(ft.hosts[0], ft.hosts[8], Some(1000), 0).is_none());
    // Same-rack traffic still flows.
    assert!(net.start_flow(ft.hosts[0], ft.hosts[1], Some(100_000), 0).is_some());
    net.run_until(Time::from_millis(5));
    assert_eq!(net.ledger().finished(), 1);
}
