//! Property-based validation of Theorems 4.1 and 5.1: under the derived
//! parameter bounds, a fluid single-hop model with delayed feedback and an
//! *adversarial* (proptest-chosen) draining-rate trace never fills the
//! buffer and never drives the input rate to zero — i.e. *hold and wait*
//! cannot occur.

use gfc_core::mapping::{LinearMapping, StageTable};
use gfc_core::theorems::{buffer_based_b1_bound, conceptual_b0_bound, time_based_b0_bound};
use gfc_core::units::{kb, Dur, Rate};
use proptest::prelude::*;

const C: Rate = Rate(10_000_000_000);
const TICK_US: u64 = 1; // fluid step

/// Fluid single-hop loop: the receiver queue is fed at the mapped rate
/// delayed by `tau`, drained by the adversarial trace. Returns
/// `(max queue, min mapped rate)` over the run.
fn conceptual_loop(
    mapping: &LinearMapping,
    tau_us: u64,
    drains: &[u64], // drain rate per tick, bits/s
) -> (u64, Rate) {
    let mut q: f64 = 0.0;
    let mut max_q = 0u64;
    let mut min_rate = C;
    // Rate pipeline: rate applied now was computed `tau` ago.
    let mut pipe: std::collections::VecDeque<Rate> = (0..tau_us).map(|_| C).collect();
    for &drain in drains {
        let rate = if tau_us == 0 {
            mapping.rate_for_queue(q as u64)
        } else {
            pipe.push_back(mapping.rate_for_queue(q as u64));
            pipe.pop_front().unwrap()
        };
        min_rate = min_rate.min(rate);
        let in_bytes = rate.0 as f64 * TICK_US as f64 / 8e6;
        let out_bytes = (drain as f64) * TICK_US as f64 / 8e6;
        q = (q + in_bytes - out_bytes).max(0.0);
        max_q = max_q.max(q as u64);
    }
    (max_q, min_rate)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 4.1: with `B0 = Bm − 4·C·τ`, the conceptual mapping keeps
    /// `q < Bm` and the rate positive for ANY drain trace.
    #[test]
    fn theorem_4_1_holds_under_adversarial_drain(
        tau_us in 1u64..20,
        drains in proptest::collection::vec(0u64..10_000_000_000, 200..800),
    ) {
        let bm = kb(1024);
        let tau = Dur::from_micros(tau_us);
        let b0 = conceptual_b0_bound(bm, C, tau).expect("1 MB admits the bound");
        let mapping = LinearMapping::new(b0, bm, C);
        let (max_q, min_rate) = conceptual_loop(&mapping, tau_us, &drains);
        prop_assert!(max_q < bm, "queue reached Bm: {max_q} >= {bm}");
        prop_assert!(min_rate > Rate::ZERO, "input rate reached zero");
    }

    /// The multi-stage table under `B1 = Bm − 2·C·τ` (§4.2): same fluid
    /// loop driven by stage-quantized feedback.
    #[test]
    fn stage_mapping_never_reaches_zero_rate(
        tau_us in 1u64..20,
        drains in proptest::collection::vec(0u64..10_000_000_000, 200..800),
    ) {
        let bm = kb(1024);
        let tau = Dur::from_micros(tau_us);
        let b1 = buffer_based_b1_bound(bm, C, tau).expect("bound");
        let table = StageTable::new(bm, b1, C);
        let mut q: f64 = 0.0;
        let mut pipe: std::collections::VecDeque<Rate> = (0..tau_us).map(|_| C).collect();
        for &drain in &drains {
            pipe.push_back(table.rate_for_stage(table.stage_for_queue(q as u64)));
            let rate = pipe.pop_front().unwrap();
            prop_assert!(rate > Rate::ZERO, "stage rate hit zero at q={q}");
            let in_b = rate.0 as f64 / 8e6;
            let out_b = drain as f64 / 8e6;
            q = (q + in_b - out_b).max(0.0);
            // The fluid stage model allows queue to approach Bm
            // asymptotically; it must never exceed it by more than the
            // single-tick inflow at the deepest stage.
            prop_assert!(
                (q as u64) < bm + 200,
                "queue overran Bm: {q} vs {bm}"
            );
        }
    }

    /// Theorem 5.1: time-based feedback every `T`, applied after `tau`,
    /// with `B0` at the bound.
    #[test]
    fn theorem_5_1_holds_under_adversarial_drain(
        tau_us in 1u64..20,
        period_us in 20u64..80,
        drains in proptest::collection::vec(0u64..10_000_000_000, 200..800),
    ) {
        let bm = kb(2048);
        let tau = Dur::from_micros(tau_us);
        let period = Dur::from_micros(period_us);
        let Some(b0) = time_based_b0_bound(bm, C, tau, period) else {
            // Margin exceeds the buffer for this (tau, T): vacuous.
            return Ok(());
        };
        prop_assume!(b0 > 0);
        let mapping = LinearMapping::new(b0, bm, C);
        let mut q: f64 = 0.0;
        let mut rate = C;
        let mut pending: Option<(u64, Rate)> = None; // (apply tick, rate)
        let mut max_q = 0u64;
        let mut min_rate = C;
        for (t, &drain) in drains.iter().enumerate() {
            let t = t as u64;
            if t.is_multiple_of(period_us) {
                // Feedback generated now, takes effect after tau.
                pending = Some((t + tau_us, mapping.rate_for_queue(q as u64)));
            }
            if let Some((due, r)) = pending {
                if t >= due {
                    rate = r;
                    pending = None;
                }
            }
            min_rate = min_rate.min(rate);
            let in_b = rate.0 as f64 / 8e6;
            let out_b = drain as f64 / 8e6;
            q = (q + in_b - out_b).max(0.0);
            max_q = max_q.max(q as u64);
        }
        prop_assert!(max_q < bm, "queue reached Bm: {max_q} >= {bm}");
        prop_assert!(min_rate > Rate::ZERO, "input rate reached zero");
    }

    /// The bounds are monotone: more feedback latency means less
    /// admissible threshold.
    #[test]
    fn bounds_monotone_in_latency(tau1 in 1u64..50, tau2 in 1u64..50) {
        prop_assume!(tau1 < tau2);
        let bm = kb(4096);
        let b1 = conceptual_b0_bound(bm, C, Dur::from_micros(tau1)).unwrap();
        let b2 = conceptual_b0_bound(bm, C, Dur::from_micros(tau2)).unwrap();
        prop_assert!(b1 > b2);
    }

    /// Stage tables keep their structural invariants for arbitrary
    /// geometry: strictly increasing thresholds, halving rates, nonzero
    /// deepest rate.
    #[test]
    fn stage_table_invariants(
        bm_kb in 64u64..4096,
        gap_kb in 2u64..64,
    ) {
        prop_assume!(gap_kb < bm_kb);
        let bm = kb(bm_kb);
        let b1 = bm - kb(gap_kb);
        let t = StageTable::new(bm, b1, C);
        let mut prev_start = None;
        let mut prev_rate = None;
        for (i, s) in t.iter() {
            if let Some(p) = prev_start {
                prop_assert!(s.start > p, "stage starts must increase");
            }
            if let Some(r) = prev_rate {
                if i >= 2 {
                    prop_assert_eq!(s.rate.0, r / 2, "rates must halve");
                }
            }
            prev_start = Some(s.start);
            prev_rate = Some(s.rate.0);
        }
        prop_assert!(t.rate_for_stage(t.num_stages()) > Rate::ZERO);
        // Lookup is the inverse of the table geometry.
        for (i, s) in t.iter() {
            prop_assert_eq!(t.stage_for_queue(s.start), i);
            if s.start > 0 {
                prop_assert!(t.stage_for_queue(s.start - 1) < i || i == 0);
            }
        }
    }
}
