//! Offline stand-in for the `bytes` crate.
//!
//! `Vec<u8>`-backed [`Bytes`]/[`BytesMut`] plus the subset of [`Buf`] /
//! [`BufMut`] the frame codecs use (big-endian gets/puts, `copy_to_slice`,
//! `remaining`). Semantics match the real crate for this subset; the
//! zero-copy refcounting of the real `Bytes` is intentionally absent.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (here: an owned `Vec<u8>` behind a cursor-free
/// facade; `Buf` reads consume from the front).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    /// Read cursor for the `Buf` impl.
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes { data: Vec::new(), pos: 0 }
    }

    /// Copies the slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for b in &self.data[self.pos..] {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// A mutable, growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub const fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut { data: data.to_vec() }
    }
}

/// Read side: sequential big-endian reads from the front of a buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Drop `cnt` bytes from the front.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    ///
    /// # Panics
    /// Panics when the buffer is exhausted, like the real `bytes` crate.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer exhausted");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    ///
    /// # Panics
    /// Panics when fewer than two bytes remain.
    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "buffer exhausted");
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    ///
    /// # Panics
    /// Panics when fewer than four bytes remain.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer exhausted");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    ///
    /// # Panics
    /// Panics when fewer than eight bytes remain.
    fn get_u64(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer exhausted");
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Fill `dst` from the front of the buffer.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer exhausted");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.pos += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write side: sequential big-endian appends.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cursor() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u16(0x8808);
        b.put_u8(7);
        b.put_slice(&[1, 2]);
        assert_eq!(b.len(), 5);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 5);
        assert_eq!(frozen.get_u16(), 0x8808);
        assert_eq!(frozen.get_u8(), 7);
        let mut rest = [0u8; 2];
        frozen.copy_to_slice(&mut rest);
        assert_eq!(rest, [1, 2]);
        assert!(frozen.is_empty());
    }

    #[test]
    fn slice_buf_advances() {
        let v = [1u8, 2, 3, 4];
        let mut s: &[u8] = &v;
        assert_eq!(s.get_u16(), 0x0102);
        assert_eq!(s.remaining(), 2);
    }
}
