//! Offline stand-in for `criterion`.
//!
//! Keeps every bench target compiling and runnable without crates.io:
//! `Criterion::bench_function` runs the closure for the configured
//! measurement window and prints mean wall-clock time per iteration. No
//! statistics, no HTML reports — enough to smoke-run and eyeball figures.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver (configuration + reporting).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Target number of samples (upper bound on iterations here).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before timing starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Configure from command-line arguments (accepted and ignored).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Time `f` and print a one-line report.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        // Warm-up: one untimed run.
        let warm_deadline = Instant::now() + self.warm_up_time;
        f(&mut b);
        while Instant::now() < warm_deadline && b.iters == 0 {
            f(&mut b);
        }
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        let deadline = Instant::now() + self.measurement_time;
        let mut samples = 0usize;
        while samples < self.sample_size && Instant::now() < deadline {
            f(&mut b);
            samples += 1;
        }
        if b.iters > 0 {
            let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
            println!("bench {id}: {:.3} ms/iter ({} iters)", per_iter * 1e3, b.iters);
        } else {
            println!("bench {id}: no iterations executed");
        }
        self
    }

    /// Compatibility no-op (the real crate finalizes reports here).
    pub fn final_summary(&mut self) {}
}

/// Passed to the benchmark closure; times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` once per sample, timing it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declare a benchmark group (same grammar as the real crate).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config.configure_from_args();
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
