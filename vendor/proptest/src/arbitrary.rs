//! `any::<T>()` — whole-domain strategies per type.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draw one value from the full domain.
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut StdRng) -> f64 {
        // Finite values spanning a wide magnitude range, sign included.
        let mag = rng.gen_range(-300i32..300);
        let mantissa = rng.gen_range(0.0f64..1.0) * 2.0 - 1.0;
        mantissa * 10f64.powi(mag)
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
