//! Fixed-size array strategies (`proptest::array::uniform*`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;

/// Strategy producing `[T; N]` from one element strategy.
pub struct UniformArray<S, const N: usize>(S);

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn new_value(&self, rng: &mut StdRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.0.new_value(rng))
    }
}

/// `[T; 6]` with every element drawn from `element`.
pub fn uniform6<S: Strategy>(element: S) -> UniformArray<S, 6> {
    UniformArray(element)
}

/// `[T; 8]` with every element drawn from `element`.
pub fn uniform8<S: Strategy>(element: S) -> UniformArray<S, 8> {
    UniformArray(element)
}
