//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Lengths a [`vec`] strategy may produce.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
