//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, `name in
//!   strategy` and `name: Type` parameter forms;
//! * [`Strategy`] for integer/float ranges, tuples, [`collection::vec`],
//!   [`array::uniform6`] and [`arbitrary::any`];
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`;
//! * [`test_runner::ProptestConfig`] with `with_cases` and a
//!   `PROPTEST_CASES` environment override.
//!
//! Cases are generated deterministically from the test name, so failures
//! reproduce across runs. Shrinking is intentionally absent: a failing
//! case reports the case index and message instead of a minimized input.

pub mod strategy;

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod test_runner;

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Drive one `proptest!` test function: run `config.cases` accepted cases,
/// each with an independent deterministic RNG stream.
///
/// # Panics
/// Panics (failing the enclosing `#[test]`) on the first failing case, or
/// when the assumption-rejection budget is exhausted.
pub fn run_proptest<F>(config: &test_runner::ProptestConfig, name: &str, body: F)
where
    F: Fn(&mut rand::rngs::StdRng) -> Result<(), test_runner::TestCaseError>,
{
    use rand::SeedableRng;

    let cases = config.effective_cases();
    let base = fnv1a(name.as_bytes());
    let mut accepted: u32 = 0;
    let mut attempt: u64 = 0;
    let budget = u64::from(cases) * 16 + 64;
    while accepted < cases {
        assert!(
            attempt < budget,
            "proptest '{name}': too many rejected cases ({attempt} attempts for {cases} cases)"
        );
        let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {}
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {accepted} (attempt {attempt}): {msg}")
            }
        }
        attempt += 1;
    }
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The `proptest!` block macro: wraps each contained function in a
/// deterministic multi-case runner.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal: expand each `#[test] fn name(params) { body }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config = $cfg;
            $crate::run_proptest(&config, stringify!($name), |__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                let __proptest_body = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                __proptest_body()
            });
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Internal: bind `name in strategy` / `name: Type` parameters.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::new_value(&($strat), $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::new_value(&($strat), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary_value($rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary_value($rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Assert inside a property; failure reports the case, not a panic site.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{} != {}: {:?} vs {:?}", stringify!($a), stringify!($b), a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{} == {}: both {:?}", stringify!($a), stringify!($b), a);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Discard the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
