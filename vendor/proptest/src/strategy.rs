//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values (the `prop_map` combinator).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
