//! Test-runner configuration and case outcomes.

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// A `prop_assume!` precondition did not hold — draw another case.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset of the real proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases after applying the `PROPTEST_CASES` environment override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse::<u32>().map_or(self.cases, |n| n.max(1)),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
