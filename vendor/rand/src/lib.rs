//! Offline stand-in for `rand` 0.8.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64, fully
//! deterministic), the [`SeedableRng`] constructor the workspace uses
//! (`seed_from_u64`), and the [`Rng`] extension trait with `gen_range` /
//! `gen_bool` / `gen`. Stream values differ from the real `rand`'s
//! ChaCha-based `StdRng` — everything in this workspace that consumes
//! randomness is seeded explicitly, so determinism (not stream equality)
//! is the contract.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type (fixed to 32 bytes for `StdRng`).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct deterministically from a `u64` (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the workspace treats Small and Std identically.
    pub type SmallRng = StdRng;
}

/// A range that knows how to draw a uniform sample of `T` from it.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per draw
    // and irrelevant for simulation workloads.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Extension trait with the convenience sampling methods.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p out of [0,1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// A value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::distributions` namespace placeholder (unused helpers live here
/// in the real crate; kept so `use rand::distributions::...` paths can be
/// added later without re-vendoring).
pub mod distributions {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
