//! Offline stand-in for `serde`.
//!
//! Exposes the `Serialize`/`Deserialize` trait names (empty marker traits)
//! and re-exports the no-op derive macros, so `use serde::{Deserialize,
//! Serialize};` plus `#[derive(Serialize, Deserialize)]` compile unchanged
//! in an environment with no crates.io access. Swap back to the real serde
//! by restoring the registry dependency — no source changes needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
