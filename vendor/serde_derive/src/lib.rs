//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types so
//! downstream users can persist them, but nothing inside the workspace
//! serializes at runtime. These macros accept the full attribute grammar
//! (`#[serde(...)]`) and expand to nothing, which keeps every derive site
//! compiling without the real dependency.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers); expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers); expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
